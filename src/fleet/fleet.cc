#include "fleet/fleet.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/contracts.h"
#include "common/parallel.h"
#include "obs/registry.h"
#include "sim/adversary.h"

namespace dap::fleet {

namespace {

constexpr char kForgedTag[] = "FORGED";

std::uint64_t fnv1a64(common::ByteView data) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const std::uint8_t byte : data) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

bool is_forged_payload(common::ByteView message) noexcept {
  const std::size_t tag_len = sizeof(kForgedTag) - 1;
  if (message.size() < tag_len) return false;
  for (std::size_t i = 0; i < tag_len; ++i) {
    if (message[i] != static_cast<std::uint8_t>(kForgedTag[i])) return false;
  }
  return true;
}

}  // namespace

namespace {

obs::SpanTag span_tag_of(tesla::RevealVerdict verdict) noexcept {
  switch (verdict) {
    case tesla::RevealVerdict::kAccepted:
      return obs::SpanTag::kAuthOk;
    case tesla::RevealVerdict::kWeakAuthFail:
      return obs::SpanTag::kWeakAuthFail;
    case tesla::RevealVerdict::kNoRecord:
      return obs::SpanTag::kNoRecord;
    case tesla::RevealVerdict::kKeyPruned:
      return obs::SpanTag::kKeyPruned;
  }
  return obs::SpanTag::kNone;
}

}  // namespace

FleetSim::FleetSim(const ScenarioSpec& spec)
    : spec_(spec),
      topo_(spec.build_topology()),
      rng_(common::subseed(spec.seed, 0xf1ee7)),
      trace_base_(common::subseed(spec.seed,
                                  fnv1a64(common::bytes_of(spec.id())))) {
  spec_.validate();
  depths_ = topo_.depths();
  adjacency_ = topo_.adjacency();

  dap_config_.sender_id = 1;
  dap_config_.chain_length = spec_.intervals + 8;
  dap_config_.disclosure_delay = 1;
  dap_config_.buffers = spec_.buffers;
  dap_config_.schedule = sim::IntervalSchedule(0, spec_.interval_us);

  // Fault scenarios arm desync recovery: reboot skew makes a rejoined
  // cohort's announces fail the safety check until a resync handshake
  // installs a fresh calibration, so the sentinel's ResyncController must
  // be live for the fleet to reconverge.
  if (!spec_.faults.empty()) {
    dap_config_.resync.enabled = true;
    dap_config_.resync.desync_threshold = 3;
    dap_config_.resync.retry_budget = 6;
    dap_config_.resync.backoff_initial = spec_.interval_us / 4;
    dap_config_.resync.backoff_max = 2 * spec_.interval_us;
  }
}

void FleetSim::set_channel_factory(ChannelFactory factory) {
  if (ran_) throw std::logic_error("FleetSim: factories must precede run()");
  channel_factory_ = std::move(factory);
}

void FleetSim::set_latency_factory(LatencyFactory factory) {
  if (ran_) throw std::logic_error("FleetSim: factories must precede run()");
  latency_factory_ = std::move(factory);
}

void FleetSim::set_snapshotter(obs::Snapshotter* snapshotter) {
  if (ran_) {
    throw std::logic_error("FleetSim: set_snapshotter must precede run()");
  }
  snapshotter_ = snapshotter;
}

void FleetSim::set_drain_observer(
    std::function<void(const DrainObservation&)> fn) {
  if (ran_) {
    throw std::logic_error("FleetSim: set_drain_observer must precede run()");
  }
  drain_observer_ = std::move(fn);
}

void FleetSim::set_drain_participant(DrainParticipant* participant) {
  if (ran_) {
    throw std::logic_error(
        "FleetSim: set_drain_participant must precede run()");
  }
  drain_participant_ = participant;
}

void FleetSim::inject(std::uint32_t node, const wire::Packet& packet) {
  DAP_REQUIRE(ran_, "FleetSim::inject: only valid while run() executes");
  DAP_REQUIRE(node < media_.size() && media_[node] != nullptr,
              "FleetSim::inject: node has no medium (no out-edges)");
  if (const auto* announce = std::get_if<wire::MacAnnounce>(&packet)) {
    if (announce_sent_at_.count(fnv1a64(announce->mac)) == 0) {
      ++report_.forged_announces_sent;
    }
  } else if (const auto* reveal = std::get_if<wire::MessageReveal>(&packet)) {
    if (is_forged_payload(reveal->message)) ++report_.forged_reveals_sent;
  }
  media_[node]->broadcast(packet);
}

void FleetSim::build_network(const common::Bytes& commitment) {
  const std::uint32_t nodes = topo_.node_count;
  media_.resize(nodes);
  cohorts_.resize(nodes);
  traffic_.assign(nodes, NodeTraffic{});
  down_until_.assign(nodes, 0);

  // One bounded ingress guard per node; degraded relays get a tighter
  // bandwidth budget, everyone else the spec's fleet-wide one.
  guards_.clear();
  guards_.reserve(nodes);
  bool any_budget = spec_.guard.budget_mbps > 0.0;
  for (std::uint32_t v = 0; v < nodes; ++v) {
    GuardConfig cfg = spec_.guard;
    cfg.dedup = spec_.relay_dedup;
    for (const DegradedRelaySpec& degraded : spec_.faults.degraded) {
      if (degraded.node == v) {
        cfg.budget_mbps = degraded.budget_mbps;
        any_budget = true;
      }
    }
    guards_.emplace_back(cfg);
  }
  guard_active_ = spec_.relay_dedup || any_budget;

  if (!channel_factory_) {
    channel_factory_ = [this](std::uint32_t, std::uint32_t) {
      std::unique_ptr<sim::Channel> channel;
      if (spec_.hop.loss > 0.0) {
        channel = std::make_unique<sim::BernoulliChannel>(spec_.hop.loss);
      } else {
        channel = std::make_unique<sim::PerfectChannel>();
      }
      if (spec_.hop.duplicate_probability > 0.0) {
        // Outermost, so duplication composes over whatever is inside.
        channel = std::make_unique<sim::DuplicateChannel>(
            std::move(channel), spec_.hop.duplicate_probability);
      }
      return channel;
    };
  }
  if (!latency_factory_) {
    latency_factory_ = [this](std::uint32_t, std::uint32_t) {
      std::unique_ptr<sim::LatencyModel> latency;
      if (spec_.hop.jitter_us > 0) {
        latency = std::make_unique<sim::JitterLink>(spec_.hop.latency_us,
                                                    spec_.hop.jitter_us);
      } else {
        latency = std::make_unique<sim::FixedLatency>(spec_.hop.latency_us);
      }
      return latency;
    };
  }

  // Healing link partitions: each partitioned edge's channel — whether it
  // came from the default stack or a test-supplied factory — is wrapped
  // in a BlackoutChannel gated on that edge's scheduled windows.
  if (!spec_.faults.partitions.empty()) {
    for (const LinkPartitionSpec& partition : spec_.faults.partitions) {
      auto& windows = partition_windows_[{partition.from, partition.to}];
      if (!windows) windows = std::make_shared<sim::FaultSchedule>();
      windows->add_window(
          dap_config_.schedule.interval_start(partition.from_interval),
          dap_config_.schedule.interval_start(partition.until_interval));
    }
    ChannelFactory inner = std::move(channel_factory_);
    channel_factory_ = [this, inner](std::uint32_t from, std::uint32_t to) {
      std::unique_ptr<sim::Channel> channel = inner(from, to);
      const auto it = partition_windows_.find({from, to});
      if (it != partition_windows_.end()) {
        channel = std::make_unique<sim::BlackoutChannel>(std::move(channel),
                                                         it->second, queue_);
      }
      return channel;
    };
  }

  // Cohorts behind every non-root node, or just the leaves.
  std::vector<bool> hosts_cohort(nodes, false);
  if (spec_.cohorts_at_leaves_only) {
    for (const std::uint32_t v : topo_.leaves()) {
      if (v != 0) hosts_cohort[v] = true;
    }
  } else {
    for (std::uint32_t v = 1; v < nodes; ++v) hosts_cohort[v] = true;
  }

  for (std::uint32_t v = 0; v < nodes; ++v) {
    if (hosts_cohort[v]) {
      CohortConfig cohort;
      cohort.members = spec_.members_per_cohort;
      cohort.dap = dap_config_;
      cohort.seed = common::subseed(spec_.seed, 2000 + v);
      // Per-node oscillator skew, derived statelessly so the fleet is
      // reproducible at any thread count.
      const sim::SimTime max_off = spec_.interval_us / 40 + 1;
      const std::int64_t span = 2 * static_cast<std::int64_t>(max_off) + 1;
      const std::int64_t offset =
          static_cast<std::int64_t>(common::subseed(spec_.seed, 5000 + v) %
                                    static_cast<std::uint64_t>(span)) -
          static_cast<std::int64_t>(max_off);
      cohort.clock = sim::LooseClock(offset, max_off);
      cohorts_[v] = std::make_unique<ReceiverCohort>(cohort, commitment);
      if (!spec_.faults.empty()) {
        // Resync transport rides the relay: handshakes fail while the
        // node is crashed, succeed (one hop-latency per leg) otherwise.
        cohorts_[v]->enable_resync(spec_.hop.latency_us,
                                   [this, v](sim::SimTime true_now) {
                                     return true_now >= down_until_[v];
                                   });
      }
    }
  }

  // One medium per relay node; each out-edge is one attached link whose
  // ingress callback delivers locally and forwards downstream.
  for (std::uint32_t v = 0; v < nodes; ++v) {
    if (adjacency_[v].empty()) continue;
    common::Rng medium_rng = rng_.fork(0x3e0 + v);
    media_[v] = std::make_unique<sim::Medium>(queue_, medium_rng);
    for (const std::uint32_t to : adjacency_[v]) {
      media_[v]->attach(
          [this, v, to](const wire::Packet& packet, sim::SimTime now) {
            on_packet(v, to, packet, now);
          },
          channel_factory_(v, to), latency_factory_(v, to));
    }
  }

  const std::uint32_t max_depth = topo_.depth();
  announces_in_by_depth_.assign(max_depth + 1, 0);
  hop_latency_by_depth_.assign(max_depth + 1, {});
  member_auth_by_depth_.assign(max_depth + 1, 0);
  sentinel_auth_by_depth_.assign(max_depth + 1, 0);
  sentinel_auth_by_depth_interval_.assign(
      max_depth + 1, std::vector<std::uint64_t>(spec_.intervals + 2, 0));
  cohorts_at_depth_.assign(max_depth + 1, 0);
  for (std::uint32_t v = 0; v < nodes; ++v) {
    if (cohorts_[v]) ++cohorts_at_depth_[depths_[v]];
  }
}

void FleetSim::schedule_faults() {
  const sim::IntervalSchedule& sched = dap_config_.schedule;
  const sim::SimTime interval = spec_.interval_us;
  for (const RelayCrashSpec& crash : spec_.faults.relay_crashes) {
    // Crash a quarter-interval in, before that interval's announce: the
    // guard state and every buffered record die with the node, ingress
    // goes deaf for `downtime_intervals`, then the node rejoins with its
    // oscillator ahead by `reboot_skew_us`.
    const sim::SimTime t_crash =
        sched.interval_start(crash.at_interval) + interval / 4;
    const sim::SimTime t_up =
        t_crash + static_cast<sim::SimTime>(crash.downtime_intervals) * interval;
    const std::uint32_t node = crash.node;
    const sim::SimTime skew = crash.reboot_skew_us;
    queue_.schedule_at(t_crash, [this, node, t_up, skew] {
      down_until_[node] = t_up;
      guards_[node].reset(queue_.now());
      if (cohorts_[node]) cohorts_[node]->crash_restart(queue_.now(), skew);
      ++report_.relay_restarts;
    });
  }
}

bool FleetSim::is_authentic_packet(const wire::Packet& packet) const {
  if (const auto* announce = std::get_if<wire::MacAnnounce>(&packet)) {
    return announce_sent_at_.count(fnv1a64(announce->mac)) != 0;
  }
  if (const auto* reveal = std::get_if<wire::MessageReveal>(&packet)) {
    return !is_forged_payload(reveal->message);
  }
  return false;
}

void FleetSim::on_packet(std::uint32_t from, std::uint32_t node,
                         const wire::Packet& packet, sim::SimTime now) {
  NodeTraffic& traffic = traffic_[node];
  ++traffic.packets_in;
  if (now < down_until_[node]) {
    // Crashed relay: deaf until it rejoins. Nothing is remembered.
    ++traffic.dropped_down;
    return;
  }
  if (guard_active_) {
    const common::Bytes encoded = wire::encode(packet);
    switch (guards_[node].admit(fnv1a64(encoded), encoded.size() * 8, now)) {
      case IngressGuard::Verdict::kDuplicate:
        ++traffic.deduped;
        return;
      case IngressGuard::Verdict::kShed:
        ++traffic.shed;
        if (is_authentic_packet(packet)) guards_[node].note_false_drop();
        return;
      case IngressGuard::Verdict::kAdmit:
        break;
    }
  }
  if (const auto* announce = std::get_if<wire::MacAnnounce>(&packet)) {
    const auto sent = announce_sent_at_.find(fnv1a64(announce->mac));
    if (sent != announce_sent_at_.end()) {
      const std::uint32_t d = depths_[node];
      ++announces_in_by_depth_[d];
      hop_latency_by_depth_[d].push_back(
          static_cast<double>(now - sent->second));
      // First arrival of the authentic announce at this node: one
      // relay-hop span, chained to the upstream node's announce-path
      // span so chrome://tracing shows the cross-hop route.
      const auto ctx_it = trace_by_interval_.find(announce->interval);
      if (ctx_it != trace_by_interval_.end() &&
          ctx_it->second.announce_arrived[node] == 0) {
        TraceCtx& ctx = ctx_it->second;
        ctx.announce_arrived[node] = now;
        const sim::SimTime begin = (from == 0 || ctx.announce_arrived[from] == 0)
                                       ? sent->second
                                       : ctx.announce_arrived[from];
        obs::SpanEvent span;
        span.uid = common::subseed(ctx.trace_id, ++ctx.seq);
        span.trace = ctx.trace_id;
        span.parent = ctx.span_at[from] != 0 ? ctx.span_at[from]
                                             : ctx.span_at[0];
        span.t_begin = begin;
        span.t_end = now;
        span.node = node;
        span.id = announce->interval;
        span.kind = obs::SpanKind::kRelayHop;
        obs::Tracer::global().record_span(span);
        ctx.span_at[node] = span.uid;
      }
    }
    if (cohorts_[node]) cohorts_[node]->receive_announce(*announce, now);
  } else if (const auto* reveal = std::get_if<wire::MessageReveal>(&packet)) {
    if (!is_forged_payload(reveal->message)) {
      const auto ctx_it = trace_by_interval_.find(reveal->interval);
      if (ctx_it != trace_by_interval_.end() &&
          ctx_it->second.reveal_arrived[node] == 0) {
        ctx_it->second.reveal_arrived[node] = now;
      }
    }
    if (cohorts_[node]) cohorts_[node]->enqueue_reveal(*reveal);
  }
  if (media_[node]) {
    media_[node]->broadcast(packet);
    ++traffic.forwarded;
  }
}

void FleetSim::drain_all() {
  const sim::SimTime now = queue_.now();
  for (std::uint32_t v = 0; v < topo_.node_count; ++v) {
    if (!cohorts_[v]) continue;
    const std::uint32_t d = depths_[v];
    if (drain_participant_ != nullptr) {
      drain_participant_->before_drain(v, *cohorts_[v]);
    }
    const std::vector<RevealOutcome> outcomes = cohorts_[v]->drain(now);
    if (drain_participant_ != nullptr) {
      drain_participant_->after_drain(v, *cohorts_[v], outcomes);
    }
    for (const RevealOutcome& outcome : outcomes) {
      const bool forged = is_forged_payload(outcome.message);
      if (drain_observer_) {
        DrainObservation observed;
        observed.node = v;
        observed.interval = outcome.interval;
        observed.forged = forged;
        observed.members_authenticated = outcome.members_authenticated;
        observed.members_total = cohorts_[v]->members() > 0
                                     ? cohorts_[v]->members() - 1
                                     : 0;  // exclude the sentinel
        observed.sentinel_authenticated = outcome.sentinel_authenticated;
        drain_observer_(observed);
      }
      // Verify span: closes this announce's causal chain at this node,
      // tagged with the sentinel's verdict (reject reason on failure).
      const auto ctx_it = trace_by_interval_.find(outcome.interval);
      if (ctx_it != trace_by_interval_.end()) {
        TraceCtx& ctx = ctx_it->second;
        obs::SpanEvent span;
        span.uid = common::subseed(ctx.trace_id, ++ctx.seq);
        span.trace = ctx.trace_id;
        span.parent = forged ? 0 : ctx.span_at[v];
        span.t_begin = (!forged && ctx.reveal_arrived[v] != 0)
                           ? ctx.reveal_arrived[v]
                           : now;
        span.t_end = now;
        span.node = v;
        span.id = outcome.interval;
        span.kind = obs::SpanKind::kVerify;
        span.tag = span_tag_of(outcome.verdict);
        obs::Tracer::global().record_span(span);
      }
      if (forged) {
        report_.forged_accepted += outcome.members_authenticated +
                                   (outcome.sentinel_authenticated ? 1 : 0);
        continue;
      }
      report_.member_auths += outcome.members_authenticated;
      member_auth_by_depth_[d] += outcome.members_authenticated;
      if (outcome.sentinel_authenticated) {
        ++report_.sentinel_auths;
        ++sentinel_auth_by_depth_[d];
        if (outcome.interval < sentinel_auth_by_depth_interval_[d].size()) {
          ++sentinel_auth_by_depth_interval_[d][outcome.interval];
        }
      }
    }
  }
  flush_live_telemetry();
  if (snapshotter_ != nullptr) {
    snapshotter_->maybe_sample(obs::Registry::global(), now);
  }
}

FleetReport FleetSim::run() {
  DAP_REQUIRE(!ran_, "FleetSim: run() is single-shot");
  ran_ = true;

  const common::Bytes sender_seed = rng_.fork(0x5eed).bytes(16);
  protocol::DapSender sender(dap_config_, sender_seed);
  build_network(sender.chain().commitment());
  schedule_faults();

  sim::FloodingForger forger(dap_config_.sender_id, dap_config_.mac_size,
                             rng_.fork(0xf04));
  sim::KeyGuessForger key_forger(dap_config_.sender_id, dap_config_.key_size,
                                 rng_.fork(0x6e5));
  std::vector<std::uint32_t> attacker_nodes = spec_.attackers;
  if (attacker_nodes.empty() && spec_.forged_fraction > 0.0) {
    attacker_nodes.push_back(0);
  }
  // With the adaptive adversary engaged the strategy layer owns announce
  // flooding (it decides per interval whether to attack, via inject());
  // running the static flood too would double-attack. The static forged
  // reveal below still runs — weak auth must reject it either way.
  const std::size_t forged_per_attacker =
      spec_.forged_fraction > 0.0 && !spec_.strategy.adaptive.enabled
          ? sim::FloodingForger::copies_for_fraction(1, spec_.forged_fraction)
          : 0;

  const sim::IntervalSchedule& sched = dap_config_.schedule;
  const sim::SimTime interval = spec_.interval_us;
  for (std::uint32_t i = 1; i <= spec_.intervals; ++i) {
    const sim::SimTime t_announce = sched.interval_start(i) + interval / 2;
    queue_.schedule_at(t_announce, [this, &sender, i] {
      const std::string payload = "m" + std::to_string(i);
      const wire::MacAnnounce announce =
          sender.announce(i, common::bytes_of(payload));
      announce_sent_at_.emplace(fnv1a64(announce.mac), queue_.now());
      ++report_.announces_sent;
      // Open this announce's trace: the root send span is the parent
      // every downstream relay-hop/verify span chains back to.
      TraceCtx ctx;
      ctx.trace_id = common::subseed(trace_base_, i);
      ctx.span_at.assign(topo_.node_count, 0);
      ctx.announce_arrived.assign(topo_.node_count, 0);
      ctx.reveal_arrived.assign(topo_.node_count, 0);
      obs::SpanEvent span;
      span.uid = common::subseed(ctx.trace_id, ++ctx.seq);
      span.trace = ctx.trace_id;
      span.parent = 0;
      span.t_begin = queue_.now();
      span.t_end = queue_.now();
      span.node = 0;
      span.id = i;
      span.kind = obs::SpanKind::kAnnounceSend;
      obs::Tracer::global().record_span(span);
      ctx.span_at[0] = span.uid;
      trace_by_interval_.insert_or_assign(i, std::move(ctx));
      media_[0]->broadcast(announce);
    });
    if (forged_per_attacker > 0) {
      queue_.schedule_at(
          t_announce + sim::kMillisecond,
          [this, &forger, i, forged_per_attacker, attacker_nodes] {
            for (const std::uint32_t a : attacker_nodes) {
              forger.flood(*media_[a], i, forged_per_attacker);
              report_.forged_announces_sent += forged_per_attacker;
            }
          });
    }
    const sim::SimTime t_reveal = sched.interval_start(i + 1) + interval / 8;
    queue_.schedule_at(t_reveal, [this, &sender, i] {
      const auto ctx_it = trace_by_interval_.find(i);
      if (ctx_it != trace_by_interval_.end()) {
        TraceCtx& ctx = ctx_it->second;
        obs::SpanEvent span;
        span.uid = common::subseed(ctx.trace_id, ++ctx.seq);
        span.trace = ctx.trace_id;
        span.parent = ctx.span_at[0];
        span.t_begin = queue_.now();
        span.t_end = queue_.now();
        span.node = 0;
        span.id = i;
        span.kind = obs::SpanKind::kRevealSend;
        obs::Tracer::global().record_span(span);
      }
      media_[0]->broadcast(sender.reveal(i));
    });
    if (!attacker_nodes.empty()) {
      // Forged reveal with a tagged payload and a guessed key: only weak
      // authentication stands between it and acceptance.
      queue_.schedule_at(t_reveal + sim::kMillisecond,
                         [this, &key_forger, i, attacker_nodes] {
                           const wire::MessageReveal forged =
                               key_forger.forge_reveal(
                                   i, common::bytes_of("FORGED"));
                           for (const std::uint32_t a : attacker_nodes) {
                             media_[a]->broadcast(forged);
                             ++report_.forged_reveals_sent;
                           }
                         });
    }
    queue_.schedule_at(sched.interval_start(i + 1) + interval * 3 / 4,
                       [this] { drain_all(); });
  }

  queue_.run();
  drain_all();  // catch reveals still queued after the last sweep
  rollup();
  return report_;
}

void FleetSim::flush_live_telemetry() {
  auto& reg = obs::Registry::global();
  const auto flush_counter = [&reg](const std::string& name,
                                    std::uint64_t current,
                                    std::uint64_t& flushed) {
    if (current > flushed) {
      reg.add(reg.counter(name), current - flushed);
      flushed = current;
    }
  };
  flush_counter("fleet.announces_sent", report_.announces_sent,
                flushed_.announces_sent);
  flush_counter("fleet.forged_announces_sent", report_.forged_announces_sent,
                flushed_.forged_announces_sent);
  flush_counter("fleet.forged_accepted", report_.forged_accepted,
                flushed_.forged_accepted);
  std::uint64_t deduped = 0;
  std::uint64_t dropped_down = 0;
  for (const NodeTraffic& t : traffic_) {
    deduped += t.deduped;
    dropped_down += t.dropped_down;
  }
  flush_counter("fleet.dedup_dropped", deduped, flushed_.dedup_dropped);
  flush_counter("fleet.dropped_while_down", dropped_down,
                flushed_.dropped_while_down);
  flush_counter("fleet.relay_restarts", report_.relay_restarts,
                flushed_.relay_restarts);

  const std::uint32_t max_depth = topo_.depth();
  std::uint64_t evicted = 0;
  std::uint64_t shed = 0;
  std::uint64_t false_drops = 0;
  std::vector<std::uint64_t> evicted_by_depth(max_depth + 1, 0);
  std::vector<std::uint64_t> shed_by_depth(max_depth + 1, 0);
  for (std::size_t v = 0; v < guards_.size(); ++v) {
    const GuardStats& g = guards_[v].stats();
    evicted += g.evicted;
    shed += g.shed;
    false_drops += g.false_drops;
    evicted_by_depth[depths_[v]] += g.evicted;
    shed_by_depth[depths_[v]] += g.shed;
  }
  flush_counter("fleet.guard.evicted", evicted, flushed_.guard_evicted);
  flush_counter("fleet.guard.shed", shed, flushed_.guard_shed);
  flush_counter("fleet.guard.false_drop", false_drops,
                flushed_.guard_false_drops);

  flushed_.announces_in_by_depth.resize(max_depth + 1, 0);
  flushed_.member_auth_by_depth.resize(max_depth + 1, 0);
  flushed_.sentinel_auth_by_depth.resize(max_depth + 1, 0);
  flushed_.hop_latency_flushed.resize(max_depth + 1, 0);
  flushed_.guard_evicted_by_depth.resize(max_depth + 1, 0);
  flushed_.guard_shed_by_depth.resize(max_depth + 1, 0);
  for (std::uint32_t d = 1; d <= max_depth; ++d) {
    const std::string prefix = "fleet.d" + std::to_string(d) + ".";
    flush_counter(prefix + "announces_in", announces_in_by_depth_[d],
                  flushed_.announces_in_by_depth[d]);
    flush_counter(prefix + "guard_evicted", evicted_by_depth[d],
                  flushed_.guard_evicted_by_depth[d]);
    flush_counter(prefix + "guard_shed", shed_by_depth[d],
                  flushed_.guard_shed_by_depth[d]);
    flush_counter(prefix + "member_auths", member_auth_by_depth_[d],
                  flushed_.member_auth_by_depth[d]);
    flush_counter(prefix + "sentinel_auths", sentinel_auth_by_depth_[d],
                  flushed_.sentinel_auth_by_depth[d]);
    std::size_t& consumed = flushed_.hop_latency_flushed[d];
    if (consumed < hop_latency_by_depth_[d].size()) {
      const auto hist = reg.histogram(prefix + "hop_latency_us");
      for (; consumed < hop_latency_by_depth_[d].size(); ++consumed) {
        reg.observe(hist, hop_latency_by_depth_[d][consumed]);
      }
    }
  }
}

void FleetSim::rollup() {
  report_.intervals = spec_.intervals;
  report_.max_depth = topo_.depth();
  for (std::uint32_t v = 0; v < topo_.node_count; ++v) {
    if (!cohorts_[v]) continue;
    ++report_.cohort_count;
    report_.total_members += cohorts_[v]->members();
    const CohortStats& stats = cohorts_[v]->stats();
    report_.announces_unsafe += stats.announces_unsafe;
    report_.weak_auth_failures += stats.weak_auth_failures;
    report_.stored_records_peak += stats.stored_records_peak;
  }
  for (std::uint32_t v = 0; v < topo_.node_count; ++v) {
    report_.dedup_dropped += traffic_[v].deduped;
    report_.dropped_while_down += traffic_[v].dropped_down;
    if (media_[v]) {
      report_.duplicated_frames += media_[v]->duplicated_frames();
      report_.total_bits += media_[v]->total_bits();
    }
  }
  report_.guard_capacity = spec_.guard.capacity;
  for (const IngressGuard& guard : guards_) {
    const GuardStats& g = guard.stats();
    report_.guard_evicted += g.evicted;
    report_.guard_shed += g.shed;
    report_.guard_false_drops += g.false_drops;
    report_.guard_peak_entries = std::max<std::uint64_t>(
        report_.guard_peak_entries, guard.peak_occupancy());
  }

  // Reconvergence clock: for every depth, intervals past the fault
  // horizon until all of its cohorts sentinel-authenticate in the same
  // announce interval again.
  report_.fault_clear_interval = spec_.faults.last_clear_interval();
  if (!spec_.faults.empty()) {
    const std::uint32_t clear = report_.fault_clear_interval;
    report_.reconverge_intervals.assign(report_.max_depth + 1, 0);
    for (std::uint32_t d = 1; d <= report_.max_depth; ++d) {
      if (cohorts_at_depth_[d] == 0) continue;
      std::uint32_t reconverged = kNeverReconverged;
      for (std::uint32_t i = std::max(clear, 1U); i <= spec_.intervals; ++i) {
        if (sentinel_auth_by_depth_interval_[d][i] == cohorts_at_depth_[d]) {
          reconverged = i - std::min(i, clear);
          break;
        }
      }
      report_.reconverge_intervals[d] = reconverged;
    }
  }
  const double opportunities = static_cast<double>(report_.total_members) *
                               static_cast<double>(report_.intervals);
  report_.auth_rate =
      opportunities > 0.0
          ? static_cast<double>(report_.member_auths +
                                report_.sentinel_auths) /
                opportunities
          : 0.0;

  // Per-depth telemetry flows out incrementally at every drain sweep
  // (flush_live_telemetry), so the snapshot stream carries live curves;
  // this final flush picks up anything after the last sweep, then the
  // run-scoped aggregates land. Handles resolve against the ambient
  // registry (the calling shard under parallel fan-out).
  flush_live_telemetry();
  auto& reg = obs::Registry::global();
  reg.add(reg.counter("fleet.members"), report_.total_members);
  // Auth-rate numerator/denominator as plain counters so downstream
  // trend gating can recompute the rate from any merged registry.
  reg.add(reg.counter("fleet.auths"),
          report_.member_auths + report_.sentinel_auths);
  reg.add(reg.counter("fleet.auth_opportunities"),
          report_.total_members * report_.intervals);
  // The bounded-relay-memory invariant, exported for trend gating:
  // peak_entries <= capacity regardless of flood pressure.
  reg.set(reg.gauge("fleet.guard.peak_entries"),
          static_cast<double>(report_.guard_peak_entries));
  reg.set(reg.gauge("fleet.guard.capacity"),
          static_cast<double>(report_.guard_capacity));
  if (snapshotter_ != nullptr) {
    snapshotter_->sample(reg, queue_.now());
  }
}

const NodeTraffic& FleetSim::node_traffic(std::uint32_t v) const {
  if (v >= traffic_.size()) {
    throw std::out_of_range("FleetSim::node_traffic: node out of range");
  }
  return traffic_[v];
}

const ReceiverCohort* FleetSim::cohort_at(std::uint32_t v) const {
  if (v >= cohorts_.size()) return nullptr;
  return cohorts_[v].get();
}

}  // namespace dap::fleet
