#include "fleet/guard.h"

#include <cmath>

#include "common/contracts.h"

namespace dap::fleet {

namespace {

constexpr double kBitsPerMegabit = 1.0e6;
/// Auto-derived bucket depth: 50 ms worth of the configured rate.
constexpr double kAutoBurstSeconds = 0.05;

bool is_pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

unsigned log2_of_pow2(std::size_t n) noexcept {
  unsigned bits = 0;
  while (n > 1) {
    n >>= 1U;
    ++bits;
  }
  return bits;
}

}  // namespace

IngressGuard::IngressGuard(const GuardConfig& config) : config_(config) {
  DAP_REQUIRE(is_pow2(config.capacity),
              "IngressGuard: capacity must be a power of two >= 1");
  DAP_REQUIRE(std::isfinite(config.budget_mbps) && config.budget_mbps >= 0.0,
              "IngressGuard: budget_mbps must be finite and >= 0");
  DAP_REQUIRE(std::isfinite(config.burst_bits),
              "IngressGuard: burst_bits must be finite");
  slots_.assign(config.capacity, 0);
  shift_ = 64U - log2_of_pow2(config.capacity);
  rebuild_bucket(0);
}

std::size_t IngressGuard::slot_of(std::uint64_t tag) const noexcept {
  // Fibonacci multiply-shift: the tag is already a hash, but taking the
  // TOP bits of a multiply keeps slot choice well mixed even for inputs
  // whose low bits cluster. shift_ == 64 (capacity 1) would be UB on the
  // shift, so special-case the single-slot store.
  if (slots_.size() == 1) return 0;
  return static_cast<std::size_t>((tag * 0x9e3779b97f4a7c15ULL) >> shift_);
}

IngressGuard::Verdict IngressGuard::admit(std::uint64_t tag, std::size_t bits,
                                          sim::SimTime now) {
  if (tag == 0) tag = 1;  // 0 marks an empty slot
  std::uint64_t* slot = nullptr;
  if (config_.dedup) {
    slot = &slots_[slot_of(tag)];
    if (*slot == tag) {
      ++stats_.deduped;
      return Verdict::kDuplicate;
    }
  }
  if (bucket_.has_value() && !bucket_->try_consume(bits, now)) {
    // Shed WITHOUT remembering the tag: a retransmission that arrives
    // once the bucket refills must be admissible.
    ++stats_.shed;
    return Verdict::kShed;
  }
  if (slot != nullptr) {
    if (*slot == 0) {
      ++occupancy_;
      if (occupancy_ > peak_occupancy_) peak_occupancy_ = occupancy_;
    } else {
      ++stats_.evicted;
    }
    *slot = tag;
  }
  ++stats_.admitted;
  return Verdict::kAdmit;
}

void IngressGuard::reset(sim::SimTime now) {
  slots_.assign(slots_.size(), 0);
  occupancy_ = 0;
  rebuild_bucket(now);
}

void IngressGuard::set_budget(double budget_mbps, double burst_bits,
                              sim::SimTime now) {
  DAP_REQUIRE(std::isfinite(budget_mbps) && budget_mbps >= 0.0,
              "IngressGuard::set_budget: budget_mbps must be >= 0");
  DAP_REQUIRE(std::isfinite(burst_bits),
              "IngressGuard::set_budget: burst_bits must be finite");
  config_.budget_mbps = budget_mbps;
  config_.burst_bits = burst_bits;
  rebuild_bucket(now);
}

void IngressGuard::rebuild_bucket(sim::SimTime now) {
  bucket_.reset();
  if (config_.budget_mbps <= 0.0) return;
  const double rate = config_.budget_mbps * kBitsPerMegabit;
  const double burst = config_.burst_bits > 0.0
                           ? config_.burst_bits
                           : rate * kAutoBurstSeconds;
  bucket_.emplace(rate, burst);
  // The bucket starts its clock at 0; advance it to `now` so a guard
  // rebuilt mid-run (crash restart, degraded budget) starts full at the
  // rebuild instant instead of over-refilled.
  (void)bucket_->available(now);
}

}  // namespace dap::fleet
