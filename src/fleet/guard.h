#pragma once
// Bounded-resource relay ingress guard.
//
// A relay under flood must not spend memory or forwarding bandwidth in
// proportion to what the adversary sends — that would hand the flooding
// game to the attacker by construction. IngressGuard bounds both:
//
//  * Dedup is a fixed-capacity, power-of-two, hash-slotted tag store
//    (direct-mapped: slot = mix(tag) >> (64 - log2(capacity))). A tag
//    landing on an occupied slot deterministically evicts the previous
//    tenant, so the store never grows past `capacity` entries no matter
//    how many distinct packets a flood generates. The price is that an
//    evicted tag's duplicates are forwarded again (amplification creeps
//    back in, counted as `evicted`), never that the store inflates.
//
//  * Forwarding work is metered by a token bucket (`budget_mbps` -> bits
//    per second per hop, bounded burst). Ingress beyond the budget is
//    shed before it is stored or forwarded, so one hop's worst-case
//    egress is rate-limited regardless of flood intensity. The caller
//    classifies collateral damage: a shed packet it knows to be part of
//    the authentic stream is recorded via note_false_drop().
//
// Everything is deterministic — no RNG, no wall clock, no iteration over
// hash-ordered state — so fleet runs stay bitwise identical at any
// thread count.

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/shaper.h"
#include "sim/time.h"

namespace dap::fleet {

struct GuardConfig {
  /// Tag-store slots; must be a power of two >= 1.
  std::size_t capacity = 4096;
  /// Ingress budget in megabits per second; 0 disables shedding.
  double budget_mbps = 0.0;
  /// Token-bucket depth in bits; <= 0 derives 50 ms worth of budget.
  double burst_bits = 0.0;
  /// When false the tag store is bypassed (budget still applies).
  bool dedup = true;
};

struct GuardStats {
  std::uint64_t admitted = 0;
  std::uint64_t deduped = 0;
  /// Occupied slots overwritten by a different tag (bounded-memory
  /// price: that tag's duplicates would be forwarded again).
  std::uint64_t evicted = 0;
  /// Packets dropped by the bandwidth budget.
  std::uint64_t shed = 0;
  /// Caller-classified authentic packets among the shed (collateral
  /// damage of the bounded defense; see note_false_drop()).
  std::uint64_t false_drops = 0;
};

class IngressGuard {
 public:
  enum class Verdict : std::uint8_t { kAdmit, kDuplicate, kShed };

  /// Contracts (library misuse, not attacker-reachable): capacity must
  /// be a power of two >= 1, budget_mbps and burst_bits finite >= 0.
  explicit IngressGuard(const GuardConfig& config);

  /// Admission decision for one ingress packet identified by `tag`
  /// (e.g. a 64-bit hash of the encoded frame) of `bits` wire bits at
  /// sim time `now`. Order: dedup first (duplicates are dropped without
  /// consuming budget), then the token bucket, then the tag insert —
  /// a shed packet is NOT remembered, so a later retransmission within
  /// budget passes.
  Verdict admit(std::uint64_t tag, std::size_t bits, sim::SimTime now);

  /// Records that a packet this guard shed belonged to the authentic
  /// stream (the caller knows; the guard cannot).
  void note_false_drop() noexcept { ++stats_.false_drops; }

  /// Crash semantics: the tag store and the bucket's debt are volatile —
  /// a restarted relay remembers nothing and starts with a full budget.
  void reset(sim::SimTime now);

  /// Replaces the bandwidth budget (degraded-relay fault injection).
  /// Same contracts as the constructor; the bucket restarts full.
  void set_budget(double budget_mbps, double burst_bits, sim::SimTime now);

  [[nodiscard]] const GuardStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }
  /// Live occupied slots (<= capacity() by construction).
  [[nodiscard]] std::size_t occupancy() const noexcept { return occupancy_; }
  /// High-water mark of occupancy() — the bounded-relay-memory claim is
  /// peak_occupancy() <= capacity(), which holds by construction.
  [[nodiscard]] std::size_t peak_occupancy() const noexcept {
    return peak_occupancy_;
  }

 private:
  [[nodiscard]] std::size_t slot_of(std::uint64_t tag) const noexcept;
  void rebuild_bucket(sim::SimTime now);

  GuardConfig config_;
  /// Direct-mapped tag store; 0 = empty (tag 0 is remapped to 1).
  std::vector<std::uint64_t> slots_;
  std::size_t occupancy_ = 0;
  std::size_t peak_occupancy_ = 0;
  unsigned shift_ = 0;  // 64 - log2(capacity)
  /// Engaged only when budget_mbps > 0.
  std::optional<sim::TokenBucket> bucket_;
  GuardStats stats_;
};

}  // namespace dap::fleet
