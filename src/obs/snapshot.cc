#include "obs/snapshot.h"

#include <ostream>
#include <sstream>

#include "obs/export.h"

namespace dap::obs {

using detail::json_number;
using detail::json_string;

Snapshotter::Snapshotter(std::string label, std::uint64_t cadence_us,
                         HistogramFilter histogram_filter)
    : label_(std::move(label)),
      cadence_(cadence_us == 0 ? 1 : cadence_us),
      next_due_(cadence_),
      histogram_filter_(std::move(histogram_filter)) {}

bool Snapshotter::maybe_sample(const Registry& registry,
                               std::uint64_t sim_now) {
  if (sim_now < next_due_) return false;
  sample(registry, sim_now);
  // Skip boundaries the sim jumped over; the next sample lands on the
  // first cadence multiple strictly after `sim_now`.
  next_due_ = (sim_now / cadence_ + 1) * cadence_;
  return true;
}

void Snapshotter::sample(const Registry& registry, std::uint64_t sim_now) {
  std::ostringstream out;
  out << "{\"seq\":" << samples_ << ",\"t_us\":" << sim_now
      << ",\"scenario\":" << json_string(label_);

  out << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, slot] : registry.sorted_counters()) {
    out << (first ? "" : ",") << json_string(name) << ":"
        << registry.value(CounterHandle{slot});
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, slot] : registry.sorted_gauges()) {
    out << (first ? "" : ",") << json_string(name) << ":"
        << json_number(registry.value(GaugeHandle{slot}));
    first = false;
  }
  out << "},\"rates\":{";
  first = true;
  for (const auto& [name, slot] : registry.sorted_rates()) {
    const auto& est = registry.value(RateHandle{slot});
    out << (first ? "" : ",") << json_string(name) << ":{\"rate\":"
        << json_number(est.rate()) << ",\"trials\":" << est.trials() << "}";
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, slot] : registry.sorted_histograms()) {
    if (histogram_filter_ && !histogram_filter_(name)) continue;
    const auto& h = registry.value(HistogramHandle{slot});
    out << (first ? "" : ",") << json_string(name) << ":{\"count\":"
        << h.count() << ",\"p50\":" << json_number(h.p50())
        << ",\"p90\":" << json_number(h.p90())
        << ",\"p99\":" << json_number(h.p99()) << "}";
    first = false;
  }
  out << "}}\n";

  body_ += out.str();
  ++samples_;
}

std::string Snapshotter::stream() const {
  std::ostringstream out;
  out << "{\"schema\":\"dap.snapshots.v1\",\"scenario\":"
      << json_string(label_) << ",\"cadence_us\":" << cadence_ << "}\n";
  out << body_;
  return out.str();
}

void Snapshotter::write(std::ostream& out) const {
  out << stream();
}

}  // namespace dap::obs
