#include "obs/tracer.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "common/csv.h"

namespace dap::obs {

std::string_view trace_kind_name(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kAnnounce:
      return "announce";
    case TraceKind::kReveal:
      return "reveal";
    case TraceKind::kAuthSuccess:
      return "auth_success";
    case TraceKind::kAuthFail:
      return "auth_fail";
    case TraceKind::kWeakAuthFail:
      return "weak_auth_fail";
    case TraceKind::kBufferEvict:
      return "buffer_evict";
    case TraceKind::kEssStep:
      return "ess_step";
    case TraceKind::kRetune:
      return "retune";
  }
  return "unknown";
}

std::string_view span_kind_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kAnnounceSend:
      return "announce_send";
    case SpanKind::kRelayHop:
      return "relay_hop";
    case SpanKind::kRevealSend:
      return "reveal_send";
    case SpanKind::kVerify:
      return "verify";
  }
  return "unknown";
}

std::string_view span_tag_name(SpanTag tag) noexcept {
  switch (tag) {
    case SpanTag::kNone:
      return "none";
    case SpanTag::kAuthOk:
      return "auth_ok";
    case SpanTag::kWeakAuthFail:
      return "weak_auth_fail";
    case SpanTag::kNoRecord:
      return "no_record";
    case SpanTag::kKeyPruned:
      return "key_pruned";
    case SpanTag::kDropped:
      return "dropped";
  }
  return "unknown";
}

Tracer::Tracer(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity),
      span_ring_(capacity == 0 ? 1 : capacity) {}

void Tracer::set_capacity(std::size_t capacity) {
  if (total_ != 0 || span_total_ != 0 || !open_spans_.empty()) {
    throw std::logic_error(
        "Tracer::set_capacity: tracer must be empty (clear() first)");
  }
  ring_.assign(capacity == 0 ? 1 : capacity, TraceEvent{});
  span_ring_.assign(capacity == 0 ? 1 : capacity, SpanEvent{});
}

void Tracer::record(TraceKind kind, std::uint64_t t, std::uint32_t id,
                    double a, double b) noexcept {
  if (!enabled_) return;
  ring_[total_ % ring_.size()] = TraceEvent{kind, id, t, a, b};
  ++total_;
}

std::size_t Tracer::size() const noexcept {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(total_, ring_.size()));
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = total_ - n;
  for (std::uint64_t i = first; i < total_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

void Tracer::record_span(const SpanEvent& span) noexcept {
  if (!enabled_) return;
  span_ring_[span_total_ % span_ring_.size()] = span;
  ++span_total_;
}

void Tracer::span_begin(const SpanEvent& span) {
  if (!enabled_) return;
  open_spans_.push_back(span);
}

void Tracer::span_end(std::uint64_t uid, std::uint64_t t_end,
                      SpanTag tag) noexcept {
  if (!enabled_) return;
  for (std::size_t i = 0; i < open_spans_.size(); ++i) {
    if (open_spans_[i].uid != uid) continue;
    SpanEvent span = open_spans_[i];
    span.t_end = t_end;
    span.tag = tag;
    open_spans_.erase(open_spans_.begin() +
                      static_cast<std::ptrdiff_t>(i));
    record_span(span);
    return;
  }
}

std::size_t Tracer::span_size() const noexcept {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(span_total_, span_ring_.size()));
}

std::vector<SpanEvent> Tracer::span_snapshot() const {
  std::vector<SpanEvent> out;
  const std::size_t n = span_size();
  out.reserve(n);
  const std::uint64_t first = span_total_ - n;
  for (std::uint64_t i = first; i < span_total_; ++i) {
    out.push_back(span_ring_[i % span_ring_.size()]);
  }
  return out;
}

void Tracer::export_jsonl(std::ostream& out) const {
  for (const TraceEvent& e : snapshot()) {
    out << "{\"kind\":\"" << trace_kind_name(e.kind) << "\",\"id\":" << e.id
        << ",\"t\":" << e.t << ",\"a\":" << common::format_number(e.a)
        << ",\"b\":" << common::format_number(e.b) << "}\n";
  }
  for (const SpanEvent& s : span_snapshot()) {
    out << "{\"span\":\"" << span_kind_name(s.kind) << "\",\"uid\":" << s.uid
        << ",\"trace\":" << s.trace << ",\"parent\":" << s.parent
        << ",\"node\":" << s.node << ",\"id\":" << s.id
        << ",\"t_begin\":" << s.t_begin << ",\"t_end\":" << s.t_end
        << ",\"tag\":\"" << span_tag_name(s.tag) << "\"}\n";
  }
}

void Tracer::export_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : snapshot()) {
    if (!first) out << ',';
    first = false;
    // Instant events on one process/thread lane; sim time is already in
    // microseconds, which is exactly trace_event's "ts" unit.
    out << "\n{\"name\":\"" << trace_kind_name(e.kind)
        << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":" << e.t
        << ",\"args\":{\"id\":" << e.id << ",\"a\":"
        << common::format_number(e.a) << ",\"b\":" << common::format_number(e.b)
        << "}}";
  }
  // Spans render as "X" complete events on per-node lanes, plus a flow
  // arrow from each retained parent's end to the child's begin so
  // chrome://tracing draws one announce's cross-hop path as a chain.
  const std::vector<SpanEvent> spans = span_snapshot();
  // Parent lookup via a uid-sorted index instead of a hash map: exports
  // must be bitwise stable by construction, so nothing in this path may
  // depend on hash-seeded layout. stable_sort + first-match keeps the
  // "first event wins" semantics for a (never expected) duplicate uid.
  std::vector<std::pair<std::uint64_t, const SpanEvent*>> by_uid;
  by_uid.reserve(spans.size());
  for (const SpanEvent& s : spans) by_uid.emplace_back(s.uid, &s);
  std::stable_sort(by_uid.begin(), by_uid.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  const auto find_span = [&by_uid](std::uint64_t uid) -> const SpanEvent* {
    const auto it = std::lower_bound(
        by_uid.begin(), by_uid.end(), uid,
        [](const auto& entry, std::uint64_t key) { return entry.first < key; });
    return it != by_uid.end() && it->first == uid ? it->second : nullptr;
  };
  for (const SpanEvent& s : spans) {
    if (!first) out << ',';
    first = false;
    const std::uint64_t dur = s.t_end > s.t_begin ? s.t_end - s.t_begin : 1;
    out << "\n{\"name\":\"" << span_kind_name(s.kind)
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.node
        << ",\"ts\":" << s.t_begin << ",\"dur\":" << dur
        << ",\"args\":{\"trace\":" << s.trace << ",\"uid\":" << s.uid
        << ",\"parent\":" << s.parent << ",\"interval\":" << s.id
        << ",\"tag\":\"" << span_tag_name(s.tag) << "\"}}";
    const SpanEvent* parent = s.parent != 0 ? find_span(s.parent) : nullptr;
    if (parent != nullptr) {
      out << ",\n{\"name\":\"hop\",\"ph\":\"s\",\"id\":" << s.uid
          << ",\"pid\":1,\"tid\":" << parent->node
          << ",\"ts\":" << parent->t_end << "}";
      out << ",\n{\"name\":\"hop\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << s.uid
          << ",\"pid\":1,\"tid\":" << s.node << ",\"ts\":" << s.t_begin
          << "}";
    }
  }
  out << "\n]}\n";
}

void Tracer::clear() noexcept {
  total_ = 0;
  span_total_ = 0;
  open_spans_.clear();
}

void Tracer::append_from(const Tracer& other) {
  if (!enabled_) return;
  for (const TraceEvent& e : other.snapshot()) {
    record(e.kind, e.t, e.id, e.a, e.b);
  }
  for (const SpanEvent& s : other.span_snapshot()) {
    record_span(s);
  }
}

namespace {
thread_local Tracer* tls_tracer_override = nullptr;
}  // namespace

Tracer& Tracer::global() {
  if (tls_tracer_override != nullptr) return *tls_tracer_override;
  static Tracer instance;  // dap-lint: allow(global-state)
  return instance;
}

Tracer* Tracer::set_thread_override(Tracer* tracer) noexcept {
  Tracer* prev = tls_tracer_override;
  tls_tracer_override = tracer;
  return prev;
}

}  // namespace dap::obs
