#include "obs/tracer.h"

#include <algorithm>
#include <ostream>

#include "common/csv.h"

namespace dap::obs {

std::string_view trace_kind_name(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kAnnounce:
      return "announce";
    case TraceKind::kReveal:
      return "reveal";
    case TraceKind::kAuthSuccess:
      return "auth_success";
    case TraceKind::kAuthFail:
      return "auth_fail";
    case TraceKind::kWeakAuthFail:
      return "weak_auth_fail";
    case TraceKind::kBufferEvict:
      return "buffer_evict";
    case TraceKind::kEssStep:
      return "ess_step";
    case TraceKind::kRetune:
      return "retune";
  }
  return "unknown";
}

Tracer::Tracer(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void Tracer::record(TraceKind kind, std::uint64_t t, std::uint32_t id,
                    double a, double b) noexcept {
  if (!enabled_) return;
  ring_[total_ % ring_.size()] = TraceEvent{kind, id, t, a, b};
  ++total_;
}

std::size_t Tracer::size() const noexcept {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(total_, ring_.size()));
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = total_ - n;
  for (std::uint64_t i = first; i < total_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

void Tracer::export_jsonl(std::ostream& out) const {
  for (const TraceEvent& e : snapshot()) {
    out << "{\"kind\":\"" << trace_kind_name(e.kind) << "\",\"id\":" << e.id
        << ",\"t\":" << e.t << ",\"a\":" << common::format_number(e.a)
        << ",\"b\":" << common::format_number(e.b) << "}\n";
  }
}

void Tracer::export_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : snapshot()) {
    if (!first) out << ',';
    first = false;
    // Instant events on one process/thread lane; sim time is already in
    // microseconds, which is exactly trace_event's "ts" unit.
    out << "\n{\"name\":\"" << trace_kind_name(e.kind)
        << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":" << e.t
        << ",\"args\":{\"id\":" << e.id << ",\"a\":"
        << common::format_number(e.a) << ",\"b\":" << common::format_number(e.b)
        << "}}";
  }
  out << "\n]}\n";
}

void Tracer::clear() noexcept {
  total_ = 0;
}

void Tracer::append_from(const Tracer& other) {
  if (!enabled_) return;
  for (const TraceEvent& e : other.snapshot()) {
    record(e.kind, e.t, e.id, e.a, e.b);
  }
}

namespace {
thread_local Tracer* tls_tracer_override = nullptr;
}  // namespace

Tracer& Tracer::global() {
  if (tls_tracer_override != nullptr) return *tls_tracer_override;
  static Tracer instance;  // dap-lint: allow(global-state)
  return instance;
}

Tracer* Tracer::set_thread_override(Tracer* tracer) noexcept {
  Tracer* prev = tls_tracer_override;
  tls_tracer_override = tracer;
  return prev;
}

}  // namespace dap::obs
