#pragma once
// Machine-readable telemetry exports.
//
// `metrics_json` renders a Registry snapshot as a stable JSON document
// (schema "dap.metrics.v2"): counters, gauges, rate estimators with
// Wilson intervals, and histograms with exact moments plus p50/p90/p99
// and the non-empty bucket boundaries (so downstream trend tooling can
// compare full distributions, not just summary quantiles).
// `write_metrics_json` writes it next to a bench's CSV output so every
// run leaves a perf-trajectory data point behind. Trace file helpers
// wrap the Tracer's stream exporters.

#include <string>
#include <string_view>

#include "obs/registry.h"
#include "obs/tracer.h"

namespace dap::obs {

namespace detail {
/// Finite doubles render with %.12g; inf/nan render as JSON null.
[[nodiscard]] std::string json_number(double v);
/// Quotes + escapes `s` as a JSON string literal.
[[nodiscard]] std::string json_string(std::string_view s);
}  // namespace detail

/// JSON snapshot of every instrument in `registry`. `wall_seconds` < 0
/// omits the wall-time field.
[[nodiscard]] std::string metrics_json(const Registry& registry,
                                       double wall_seconds = -1.0);

/// As above, but splices `extra_fields` — pre-rendered JSON members such
/// as `"threads": 4, "peak_rss_kb": 1234` (no surrounding braces, no
/// trailing comma) — right after the wall-time field. Empty string adds
/// nothing. The caller owns the validity of the rendered fragment.
[[nodiscard]] std::string metrics_json(const Registry& registry,
                                       double wall_seconds,
                                       const std::string& extra_fields);

/// Writes `metrics_json` to `path`, creating parent directories.
/// Throws std::runtime_error when the file cannot be opened.
void write_metrics_json(const Registry& registry, const std::string& path,
                        double wall_seconds = -1.0);

/// Three-field variant threading `extra_fields` through to the renderer.
void write_metrics_json(const Registry& registry, const std::string& path,
                        double wall_seconds, const std::string& extra_fields);

/// Writes the tracer's retained events as JSONL to `path`.
void write_trace_jsonl(const Tracer& tracer, const std::string& path);

/// Writes the tracer's retained events as Chrome trace_event JSON to
/// `path` (open with chrome://tracing or https://ui.perfetto.dev).
void write_chrome_trace(const Tracer& tracer, const std::string& path);

}  // namespace dap::obs
