#pragma once
// Interval-driven registry snapshots as a JSONL time series.
//
// A Snapshotter turns end-of-run telemetry into trajectories: callers
// hand it the registry at sim-time checkpoints (typically once per
// protocol interval, from the event-driven drain sweep) and it appends
// one compact JSON line per sample — counters, gauges, rate-estimator
// states and histogram summaries at that instant. Cadence is measured
// in *sim* time, so the stream is deterministic and bitwise-identical
// at any DAP_THREADS setting. Schema "dap.snapshots.v1": a header line
//   {"schema":"dap.snapshots.v1","scenario":...,"cadence_us":N}
// followed by sample lines
//   {"seq":0,"t_us":...,"scenario":...,"counters":{...},"gauges":{...},
//    "rates":{name:{"rate":..,"trials":..}},
//    "histograms":{name:{"count":..,"p50":..,"p90":..,"p99":..}}}

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/registry.h"

namespace dap::obs {

class Snapshotter {
 public:
  /// Chooses which histograms appear in samples, by instrument name.
  /// Counters/gauges/rates are always deterministic event counts, but a
  /// histogram fed by a wall-clock ScopedTimer has run-dependent
  /// quantiles — callers that need bitwise-reproducible streams pass a
  /// filter admitting only sim-time instruments (e.g. hop latencies).
  using HistogramFilter = std::function<bool(std::string_view)>;

  /// `label` tags every line (scenario id); `cadence_us` is the minimum
  /// sim-time distance between samples taken via maybe_sample(). The
  /// default filter admits every histogram.
  Snapshotter(std::string label, std::uint64_t cadence_us,
              HistogramFilter histogram_filter = {});

  /// Samples `registry` if `sim_now` has reached the next cadence
  /// boundary; cheap no-op otherwise. Returns true when it sampled.
  bool maybe_sample(const Registry& registry, std::uint64_t sim_now);

  /// Unconditionally samples `registry` at `sim_now` (used for the
  /// final end-of-run sample regardless of cadence phase).
  void sample(const Registry& registry, std::uint64_t sim_now);

  [[nodiscard]] std::size_t samples() const noexcept { return samples_; }
  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] std::uint64_t cadence_us() const noexcept { return cadence_; }

  /// The full JSONL stream (header + one line per sample).
  [[nodiscard]] std::string stream() const;

  /// Writes the stream to `out`.
  void write(std::ostream& out) const;

 private:
  std::string label_;
  std::uint64_t cadence_ = 1;
  std::uint64_t next_due_ = 0;
  std::size_t samples_ = 0;
  HistogramFilter histogram_filter_;
  std::string body_;  // sample lines, appended as taken
};

}  // namespace dap::obs
