#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dap::obs {

namespace detail {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan literals
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string json_string(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace detail

namespace {

using detail::json_number;
using detail::json_string;

std::ofstream open_for_write(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("obs: cannot open " + path + " for writing");
  }
  return out;
}

}  // namespace

std::string metrics_json(const Registry& registry, double wall_seconds) {
  return metrics_json(registry, wall_seconds, std::string());
}

std::string metrics_json(const Registry& registry, double wall_seconds,
                         const std::string& extra_fields) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"dap.metrics.v2\"";
  if (wall_seconds >= 0.0) {
    out << ",\n  \"wall_seconds\": " << json_number(wall_seconds);
  }
  if (!extra_fields.empty()) {
    out << ",\n  " << extra_fields;
  }

  out << ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, slot] : registry.sorted_counters()) {
    out << (first ? "" : ",") << "\n    " << json_string(name) << ": "
        << registry.value(CounterHandle{slot});
    first = false;
  }
  out << (first ? "" : "\n  ") << "}";

  out << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, slot] : registry.sorted_gauges()) {
    out << (first ? "" : ",") << "\n    " << json_string(name) << ": "
        << json_number(registry.value(GaugeHandle{slot}));
    first = false;
  }
  out << (first ? "" : "\n  ") << "}";

  out << ",\n  \"rates\": {";
  first = true;
  for (const auto& [name, slot] : registry.sorted_rates()) {
    const auto& est = registry.value(RateHandle{slot});
    const auto [lo, hi] = est.wilson95();
    out << (first ? "" : ",") << "\n    " << json_string(name) << ": {"
        << "\"rate\": " << json_number(est.rate())
        << ", \"trials\": " << est.trials()
        << ", \"successes\": " << est.successes() << ", \"wilson95\": ["
        << json_number(lo) << ", " << json_number(hi) << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}";

  out << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, slot] : registry.sorted_histograms()) {
    const auto& h = registry.value(HistogramHandle{slot});
    out << (first ? "" : ",") << "\n    " << json_string(name) << ": {"
        << "\"count\": " << h.count() << ", \"sum\": " << json_number(h.sum())
        << ", \"mean\": " << json_number(h.moments().mean())
        << ", \"stddev\": " << json_number(h.moments().stddev())
        << ", \"min\": " << json_number(h.min())
        << ", \"max\": " << json_number(h.max())
        << ", \"p50\": " << json_number(h.p50())
        << ", \"p90\": " << json_number(h.p90())
        << ", \"p99\": " << json_number(h.p99()) << ", \"buckets\": [";
    // Only non-empty buckets appear: [lower, upper, count] triples in
    // bucket order. 514 mostly-zero entries would swamp the document.
    bool first_bucket = true;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      const std::uint64_t n = h.bucket_count(i);
      if (n == 0) continue;
      out << (first_bucket ? "" : ", ") << "["
          << json_number(LatencyHistogram::bucket_lower(i)) << ", "
          << json_number(LatencyHistogram::bucket_upper(i)) << ", " << n
          << "]";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}";

  out << "\n}\n";
  return out.str();
}

void write_metrics_json(const Registry& registry, const std::string& path,
                        double wall_seconds) {
  open_for_write(path) << metrics_json(registry, wall_seconds);
}

void write_metrics_json(const Registry& registry, const std::string& path,
                        double wall_seconds, const std::string& extra_fields) {
  open_for_write(path) << metrics_json(registry, wall_seconds, extra_fields);
}

void write_trace_jsonl(const Tracer& tracer, const std::string& path) {
  auto out = open_for_write(path);
  tracer.export_jsonl(out);
}

void write_chrome_trace(const Tracer& tracer, const std::string& path) {
  auto out = open_for_write(path);
  tracer.export_chrome_trace(out);
}

}  // namespace dap::obs
