#pragma once
// Structured event tracing over a fixed-capacity ring buffer.
//
// Protocol and solver code records typed events (announce, reveal,
// auth outcomes, buffer evictions, replicator steps) stamped with sim
// time. Recording is a no-op branch while disabled (the default) and an
// allocation-free ring write while enabled; when the ring is full the
// oldest events are overwritten, so a trace always holds the tail of
// the run. Traces export as JSONL (one event per line) or as Chrome
// `trace_event` JSON loadable in chrome://tracing / Perfetto.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace dap::obs {

enum class TraceKind : std::uint8_t {
  kAnnounce,      // MAC announcement processed (id = interval)
  kReveal,        // message+key reveal processed (id = interval)
  kAuthSuccess,   // strong authentication accepted a message
  kAuthFail,      // no stored record matched the recomputed uMAC
  kWeakAuthFail,  // disclosed key failed the chain walk
  kBufferEvict,   // a stored record was displaced by a later copy
  kEssStep,       // replicator-dynamics step (a = X, b = Y)
  kRetune,        // adaptive controller changed m (a = new m, b = p-hat)
};

[[nodiscard]] std::string_view trace_kind_name(TraceKind kind) noexcept;

struct TraceEvent {
  TraceKind kind = TraceKind::kAnnounce;
  std::uint32_t id = 0;   // interval / step index, event-kind specific
  std::uint64_t t = 0;    // sim-time stamp (us) or step counter
  double a = 0.0;         // payload, event-kind specific
  double b = 0.0;
};

/// Lifecycle stage a span covers on one announce's path through the
/// fleet: sender broadcast, per-hop relay re-framing, receiver verify.
enum class SpanKind : std::uint8_t {
  kAnnounceSend,  // sender broadcast of the MAC announcement
  kRelayHop,      // first arrival + re-broadcast at one relay/receiver
  kRevealSend,    // sender broadcast of the matching reveal
  kVerify,        // receiver-side reveal verification (tag = outcome)
};

/// Outcome tag on a closed span (kVerify carries the reject reason).
enum class SpanTag : std::uint8_t {
  kNone,          // not an outcome-bearing span
  kAuthOk,        // strong authentication accepted the message
  kWeakAuthFail,  // disclosed key failed the chain walk
  kNoRecord,      // no buffered uMAC record matched (forged / lost MAC)
  kKeyPruned,     // per-interval MAC key already discarded
  kDropped,       // packet never arrived / evicted before verification
};

[[nodiscard]] std::string_view span_kind_name(SpanKind kind) noexcept;
[[nodiscard]] std::string_view span_tag_name(SpanTag tag) noexcept;

/// One closed interval on an announce's causal path. `uid` is assigned
/// by the caller (deterministically, e.g. common::subseed of the trace
/// id and a per-trace sequence) so spans survive shard merges with
/// parent links intact; `parent == 0` marks a root span.
struct SpanEvent {
  std::uint64_t uid = 0;     // caller-assigned, nonzero, unique per run
  std::uint64_t trace = 0;   // trace id shared by every span of one announce
  std::uint64_t parent = 0;  // uid of the causal predecessor (0 = root)
  std::uint64_t t_begin = 0; // sim time (us)
  std::uint64_t t_end = 0;   // sim time (us), >= t_begin
  std::uint32_t node = 0;    // node id; becomes the chrome-trace lane (tid)
  std::uint32_t id = 0;      // interval index
  SpanKind kind = SpanKind::kAnnounceSend;
  SpanTag tag = SpanTag::kNone;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 16384);

  void enable(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Resizes both rings (events and spans). Only legal while the tracer
  /// is empty — nothing recorded since construction or the last clear()
  /// — because a resize would scramble the ring order; throws
  /// std::logic_error otherwise. Benches size the ring to the run ahead
  /// of time so smoke suites can assert zero drops.
  void set_capacity(std::size_t capacity);

  /// Records one event while enabled; overwrites the oldest event once
  /// `capacity` is exceeded. Never allocates.
  void record(TraceKind kind, std::uint64_t t, std::uint32_t id = 0,
              double a = 0.0, double b = 0.0) noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_.size();
  }
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept;
  /// Events recorded since construction/clear, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_ - size();
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Records one complete (already closed) span while enabled. Spans
  /// live in their own ring with the same overwrite-oldest policy.
  void record_span(const SpanEvent& span) noexcept;
  /// Opens a span (t_end ignored); held outside the ring until closed.
  void span_begin(const SpanEvent& span);
  /// Closes the open span `uid`, stamping `t_end` and `tag`, and moves
  /// it into the span ring. Unknown uids are ignored.
  void span_end(std::uint64_t uid, std::uint64_t t_end,
                SpanTag tag = SpanTag::kNone) noexcept;

  [[nodiscard]] std::size_t span_capacity() const noexcept {
    return span_ring_.size();
  }
  /// Closed spans currently held (<= span_capacity).
  [[nodiscard]] std::size_t span_size() const noexcept;
  [[nodiscard]] std::uint64_t spans_total_recorded() const noexcept {
    return span_total_;
  }
  [[nodiscard]] std::uint64_t spans_dropped() const noexcept {
    return span_total_ - span_size();
  }
  /// Spans begun but not yet ended.
  [[nodiscard]] std::size_t open_spans() const noexcept {
    return open_spans_.size();
  }

  /// Retained closed spans, oldest first.
  [[nodiscard]] std::vector<SpanEvent> span_snapshot() const;

  /// One JSON object per line. Instant events:
  /// {"kind":"auth_success","id":3,"t":1500000,"a":0,"b":0}
  /// Span events carry a "span" key and come after the instants:
  /// {"span":"relay_hop","uid":..,"trace":..,"parent":..,...}
  void export_jsonl(std::ostream& out) const;
  /// Chrome trace_event JSON ({"traceEvents":[...]}) with instants as
  /// "i" events and spans as "X" complete events on per-node lanes,
  /// linked parent->child with flow ("s"/"f") arrows.
  void export_chrome_trace(std::ostream& out) const;

  void clear() noexcept;

  /// Replays `other`'s retained events and closed spans into this
  /// tracer (oldest first) via record()/record_span(), so capacity/drop
  /// accounting applies as if they had been recorded here. Open spans
  /// are not transferred. Used by the parallel shard merge.
  void append_from(const Tracer& other);

  /// Process-wide tracer (disabled until a caller enables it) — unless
  /// the calling thread has a shard override installed (see
  /// set_thread_override), in which case that shard is returned.
  static Tracer& global();

  /// Installs `tracer` as the calling thread's `global()` (nullptr
  /// restores the process-wide tracer). Returns the previous override.
  static Tracer* set_thread_override(Tracer* tracer) noexcept;

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;  // next write goes to ring_[total_ % capacity]
  std::vector<SpanEvent> span_ring_;
  std::uint64_t span_total_ = 0;
  std::vector<SpanEvent> open_spans_;  // begun, not yet ended
  bool enabled_ = false;
};

}  // namespace dap::obs
