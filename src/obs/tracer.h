#pragma once
// Structured event tracing over a fixed-capacity ring buffer.
//
// Protocol and solver code records typed events (announce, reveal,
// auth outcomes, buffer evictions, replicator steps) stamped with sim
// time. Recording is a no-op branch while disabled (the default) and an
// allocation-free ring write while enabled; when the ring is full the
// oldest events are overwritten, so a trace always holds the tail of
// the run. Traces export as JSONL (one event per line) or as Chrome
// `trace_event` JSON loadable in chrome://tracing / Perfetto.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace dap::obs {

enum class TraceKind : std::uint8_t {
  kAnnounce,      // MAC announcement processed (id = interval)
  kReveal,        // message+key reveal processed (id = interval)
  kAuthSuccess,   // strong authentication accepted a message
  kAuthFail,      // no stored record matched the recomputed uMAC
  kWeakAuthFail,  // disclosed key failed the chain walk
  kBufferEvict,   // a stored record was displaced by a later copy
  kEssStep,       // replicator-dynamics step (a = X, b = Y)
  kRetune,        // adaptive controller changed m (a = new m, b = p-hat)
};

[[nodiscard]] std::string_view trace_kind_name(TraceKind kind) noexcept;

struct TraceEvent {
  TraceKind kind = TraceKind::kAnnounce;
  std::uint32_t id = 0;   // interval / step index, event-kind specific
  std::uint64_t t = 0;    // sim-time stamp (us) or step counter
  double a = 0.0;         // payload, event-kind specific
  double b = 0.0;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 16384);

  void enable(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Records one event while enabled; overwrites the oldest event once
  /// `capacity` is exceeded. Never allocates.
  void record(TraceKind kind, std::uint64_t t, std::uint32_t id = 0,
              double a = 0.0, double b = 0.0) noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_.size();
  }
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept;
  /// Events recorded since construction/clear, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_ - size();
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// One JSON object per line:
  /// {"kind":"auth_success","id":3,"t":1500000,"a":0,"b":0}
  void export_jsonl(std::ostream& out) const;
  /// Chrome trace_event JSON ({"traceEvents":[...]}) with events as
  /// instants on the sim-time axis.
  void export_chrome_trace(std::ostream& out) const;

  void clear() noexcept;

  /// Replays `other`'s retained events into this tracer (oldest first)
  /// via record(), so capacity/drop accounting applies as if the events
  /// had been recorded here. Used by the parallel shard merge.
  void append_from(const Tracer& other);

  /// Process-wide tracer (disabled until a caller enables it) — unless
  /// the calling thread has a shard override installed (see
  /// set_thread_override), in which case that shard is returned.
  static Tracer& global();

  /// Installs `tracer` as the calling thread's `global()` (nullptr
  /// restores the process-wide tracer). Returns the previous override.
  static Tracer* set_thread_override(Tracer* tracer) noexcept;

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;  // next write goes to ring_[total_ % capacity]
  bool enabled_ = false;
};

}  // namespace dap::obs
