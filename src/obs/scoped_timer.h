#pragma once
// RAII latency probes feeding obs::Registry histograms.
//
// A ScopedTimer reads the steady clock on construction and records the
// elapsed wall time in microseconds into a pre-registered histogram on
// destruction — two clock reads plus one allocation-free histogram
// update per timed scope. Instrumentation on crypto-grade hot paths can
// be switched off globally (`set_timing_enabled(false)`), which reduces
// a timer to one relaxed atomic load.

#include <atomic>
#include <chrono>

#include "obs/registry.h"

namespace dap::obs {

namespace detail {
inline std::atomic<bool>& timing_flag() noexcept {
  static std::atomic<bool> enabled{true};
  return enabled;
}
}  // namespace detail

/// Globally enables/disables ScopedTimer clock reads (default: enabled).
inline void set_timing_enabled(bool enabled) noexcept {
  detail::timing_flag().store(enabled, std::memory_order_relaxed);
}
[[nodiscard]] inline bool timing_enabled() noexcept {
  return detail::timing_flag().load(std::memory_order_relaxed);
}

class ScopedTimer {
 public:
  ScopedTimer(Registry& registry, HistogramHandle handle) noexcept
      : registry_(timing_enabled() ? &registry : nullptr), handle_(handle) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  /// Times into the global registry under `handle`.
  explicit ScopedTimer(HistogramHandle handle) noexcept
      : ScopedTimer(Registry::global(), handle) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (registry_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_->observe(
        handle_,
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

 private:
  Registry* registry_;
  HistogramHandle handle_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dap::obs
