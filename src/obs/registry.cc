#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/csv.h"

namespace dap::obs {

// ------------------------------------------------------ LatencyHistogram

LatencyHistogram::LatencyHistogram() : counts_(kBuckets, 0) {}

std::size_t LatencyHistogram::bucket_index(double value) noexcept {
  if (!(value > 0.0)) return 0;  // <= 0 and NaN land in the underflow bucket
  const int e = std::ilogb(value);
  if (e < kMinExponent) return 0;
  if (e > kMaxExponent) return kBuckets - 1;
  // value = mantissa * 2^e with mantissa in [1, 2): linear split of the
  // octave into kSubBuckets equal slices.
  const double mantissa = std::scalbn(value, -e);
  auto sub = static_cast<std::size_t>((mantissa - 1.0) *
                                      static_cast<double>(kSubBuckets));
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + static_cast<std::size_t>(e - kMinExponent) * kSubBuckets + sub;
}

double LatencyHistogram::bucket_lower(std::size_t i) noexcept {
  if (i == 0) return 0.0;
  if (i >= kBuckets - 1) return std::scalbn(1.0, kMaxExponent + 1);
  const std::size_t slot = i - 1;
  const int e = kMinExponent + static_cast<int>(slot / kSubBuckets);
  const double sub = static_cast<double>(slot % kSubBuckets);
  return std::scalbn(1.0 + sub / static_cast<double>(kSubBuckets), e);
}

double LatencyHistogram::bucket_upper(std::size_t i) noexcept {
  if (i == 0) return std::scalbn(1.0, kMinExponent);
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return bucket_lower(i + 1);
}

void LatencyHistogram::add(double value) noexcept {
  ++counts_[bucket_index(value)];
  moments_.add(value);
  sum_ += value;
}

double LatencyHistogram::quantile(double q) const noexcept {
  const std::size_t n = moments_.count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return moments_.min();
  if (q == 1.0) return moments_.max();
  // Nearest-rank on the 0-based sample index.
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(n - 1) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen > rank) {
      double estimate;
      if (i == 0) {
        estimate = moments_.min();
      } else if (i == kBuckets - 1) {
        estimate = moments_.max();
      } else {
        estimate = 0.5 * (bucket_lower(i) + bucket_upper(i));
      }
      return std::clamp(estimate, moments_.min(), moments_.max());
    }
  }
  return moments_.max();  // unreachable: buckets cover every double
}

// -------------------------------------------------------------- Registry

std::uint32_t Registry::NameTable::intern(std::string_view name,
                                          std::size_t next_slot) {
  const auto it = index.find(name);
  if (it != index.end()) return it->second;
  const auto slot = static_cast<std::uint32_t>(next_slot);
  index.emplace(std::string(name), slot);
  names.emplace_back(name);
  return slot;
}

CounterHandle Registry::counter(std::string_view name) {
  const auto slot = counter_names_.intern(name, counters_.size());
  if (slot == counters_.size()) counters_.push_back(0);
  return CounterHandle{slot};
}

GaugeHandle Registry::gauge(std::string_view name) {
  const auto slot = gauge_names_.intern(name, gauges_.size());
  if (slot == gauges_.size()) gauges_.push_back(0.0);
  return GaugeHandle{slot};
}

HistogramHandle Registry::histogram(std::string_view name) {
  const auto slot = histogram_names_.intern(name, histograms_.size());
  if (slot == histograms_.size()) histograms_.emplace_back();
  return HistogramHandle{slot};
}

RateHandle Registry::rate(std::string_view name) {
  const auto slot = rate_names_.intern(name, rates_.size());
  if (slot == rates_.size()) rates_.emplace_back();
  return RateHandle{slot};
}

namespace {

std::vector<std::pair<std::string_view, std::uint32_t>> sorted_names(
    const std::vector<std::string>& names) {
  std::vector<std::pair<std::string_view, std::uint32_t>> out;
  out.reserve(names.size());
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    out.emplace_back(names[i], i);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

const std::uint64_t* Registry::find_counter(std::string_view name) const {
  const std::uint32_t* slot = counter_names_.find(name);
  return slot == nullptr ? nullptr : &counters_[*slot];
}

const double* Registry::find_gauge(std::string_view name) const {
  const std::uint32_t* slot = gauge_names_.find(name);
  return slot == nullptr ? nullptr : &gauges_[*slot];
}

const LatencyHistogram* Registry::find_histogram(std::string_view name) const {
  const std::uint32_t* slot = histogram_names_.find(name);
  return slot == nullptr ? nullptr : &histograms_[*slot];
}

const common::RateEstimator* Registry::find_rate(std::string_view name) const {
  const std::uint32_t* slot = rate_names_.find(name);
  return slot == nullptr ? nullptr : &rates_[*slot];
}

std::vector<std::pair<std::string_view, std::uint32_t>>
Registry::sorted_counters() const {
  return sorted_names(counter_names_.names);
}
std::vector<std::pair<std::string_view, std::uint32_t>>
Registry::sorted_gauges() const {
  return sorted_names(gauge_names_.names);
}
std::vector<std::pair<std::string_view, std::uint32_t>>
Registry::sorted_histograms() const {
  return sorted_names(histogram_names_.names);
}
std::vector<std::pair<std::string_view, std::uint32_t>>
Registry::sorted_rates() const {
  return sorted_names(rate_names_.names);
}

std::string Registry::report(bool skip_zero_counters) const {
  // Byte-compatible with the historical sim::Metrics::report(): counters,
  // then rates, then observation moments, each alphabetical.
  std::ostringstream out;
  for (const auto& [name, slot] : sorted_counters()) {
    if (skip_zero_counters && counters_[slot] == 0) continue;
    out << "  " << name << " = " << counters_[slot] << '\n';
  }
  for (const auto& [name, slot] : sorted_rates()) {
    const auto& est = rates_[slot];
    const auto [lo, hi] = est.wilson95();
    out << "  " << name << " = " << common::format_number(est.rate()) << " ["
        << common::format_number(lo) << ", " << common::format_number(hi)
        << "] over " << est.trials() << " trials\n";
  }
  for (const auto& [name, slot] : sorted_histograms()) {
    const auto& st = histograms_[slot].moments();
    out << "  " << name << " mean=" << common::format_number(st.mean())
        << " sd=" << common::format_number(st.stddev()) << " n=" << st.count()
        << '\n';
  }
  return out.str();
}

void Registry::clear() noexcept {
  counter_names_ = NameTable{};
  gauge_names_ = NameTable{};
  histogram_names_ = NameTable{};
  rate_names_ = NameTable{};
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  rates_.clear();
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

}  // namespace dap::obs
