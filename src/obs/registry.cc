#include "obs/registry.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "common/contracts.h"
#include "common/csv.h"
#include "common/parallel.h"
#include "obs/tracer.h"

namespace dap::obs {

namespace {

/// Source of registry uids: never 0 (the PerRegistryCache "unbound"
/// sentinel), never reused. Atomic so shard registries can be
/// constructed concurrently on pool threads.
std::uint64_t next_registry_uid() noexcept {
  static std::atomic<std::uint64_t> next{1};  // dap-lint: allow(global-state)
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// The calling thread's shard override (nullptr = process registry).
thread_local Registry* tls_registry_override = nullptr;

}  // namespace

// ------------------------------------------------------ LatencyHistogram

LatencyHistogram::LatencyHistogram() : counts_(kBuckets, 0) {}

std::size_t LatencyHistogram::bucket_index(double value) noexcept {
  if (!(value > 0.0)) return 0;  // <= 0 and NaN land in the underflow bucket
  const int e = std::ilogb(value);
  if (e < kMinExponent) return 0;
  if (e > kMaxExponent) return kBuckets - 1;
  // value = mantissa * 2^e with mantissa in [1, 2): linear split of the
  // octave into kSubBuckets equal slices.
  const double mantissa = std::scalbn(value, -e);
  auto sub = static_cast<std::size_t>((mantissa - 1.0) *
                                      static_cast<double>(kSubBuckets));
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + static_cast<std::size_t>(e - kMinExponent) * kSubBuckets + sub;
}

double LatencyHistogram::bucket_lower(std::size_t i) noexcept {
  if (i == 0) return 0.0;
  if (i >= kBuckets - 1) return std::scalbn(1.0, kMaxExponent + 1);
  const std::size_t slot = i - 1;
  const int e = kMinExponent + static_cast<int>(slot / kSubBuckets);
  const double sub = static_cast<double>(slot % kSubBuckets);
  return std::scalbn(1.0 + sub / static_cast<double>(kSubBuckets), e);
}

double LatencyHistogram::bucket_upper(std::size_t i) noexcept {
  if (i == 0) return std::scalbn(1.0, kMinExponent);
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return bucket_lower(i + 1);
}

void LatencyHistogram::add(double value) noexcept {
  ++counts_[bucket_index(value)];
  moments_.add(value);
  sum_ += value;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts_[i] += other.counts_[i];
  }
  moments_.merge(other.moments_);
  sum_ += other.sum_;
}

double LatencyHistogram::quantile(double q) const noexcept {
  const std::size_t n = moments_.count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return moments_.min();
  if (q == 1.0) return moments_.max();
  // Nearest-rank on the 0-based sample index.
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(n - 1) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen > rank) {
      double estimate;
      if (i == 0) {
        estimate = moments_.min();
      } else if (i == kBuckets - 1) {
        estimate = moments_.max();
      } else {
        estimate = 0.5 * (bucket_lower(i) + bucket_upper(i));
      }
      return std::clamp(estimate, moments_.min(), moments_.max());
    }
  }
  return moments_.max();  // unreachable: buckets cover every double
}

// -------------------------------------------------------------- Registry

Registry::Registry() : uid_(next_registry_uid()) {}

Registry::Registry(const Registry& other)
    : uid_(next_registry_uid()),
      counter_names_(other.counter_names_),
      gauge_names_(other.gauge_names_),
      histogram_names_(other.histogram_names_),
      rate_names_(other.rate_names_),
      counters_(other.counters_),
      gauges_(other.gauges_),
      gauge_written_(other.gauge_written_),
      histograms_(other.histograms_),
      rates_(other.rates_) {}

Registry& Registry::operator=(const Registry& other) {
  if (this == &other) return *this;
  counter_names_ = other.counter_names_;
  gauge_names_ = other.gauge_names_;
  histogram_names_ = other.histogram_names_;
  rate_names_ = other.rate_names_;
  counters_ = other.counters_;
  gauges_ = other.gauges_;
  gauge_written_ = other.gauge_written_;
  histograms_ = other.histograms_;
  rates_ = other.rates_;
  uid_ = next_registry_uid();  // contents changed: invalidate cached handles
  return *this;
}

Registry::Registry(Registry&& other) noexcept
    : uid_(next_registry_uid()),
      counter_names_(std::move(other.counter_names_)),
      gauge_names_(std::move(other.gauge_names_)),
      histogram_names_(std::move(other.histogram_names_)),
      rate_names_(std::move(other.rate_names_)),
      counters_(std::move(other.counters_)),
      gauges_(std::move(other.gauges_)),
      gauge_written_(std::move(other.gauge_written_)),
      histograms_(std::move(other.histograms_)),
      rates_(std::move(other.rates_)) {}

Registry& Registry::operator=(Registry&& other) noexcept {
  if (this == &other) return *this;
  counter_names_ = std::move(other.counter_names_);
  gauge_names_ = std::move(other.gauge_names_);
  histogram_names_ = std::move(other.histogram_names_);
  rate_names_ = std::move(other.rate_names_);
  counters_ = std::move(other.counters_);
  gauges_ = std::move(other.gauges_);
  gauge_written_ = std::move(other.gauge_written_);
  histograms_ = std::move(other.histograms_);
  rates_ = std::move(other.rates_);
  uid_ = next_registry_uid();
  return *this;
}

namespace {

/// First entry in the sorted (name, slot) index not ordering before
/// `name` (plain lower_bound with heterogeneous comparison).
std::vector<std::pair<std::string, std::uint32_t>>::const_iterator
index_lower_bound(
    const std::vector<std::pair<std::string, std::uint32_t>>& index,
    std::string_view name) {
  return std::lower_bound(
      index.begin(), index.end(), name,
      [](const std::pair<std::string, std::uint32_t>& entry,
         std::string_view key) { return entry.first < key; });
}

}  // namespace

std::uint32_t Registry::NameTable::intern(std::string_view name,
                                          std::size_t next_slot) {
  const auto it = index_lower_bound(index, name);
  if (it != index.end() && it->first == name) return it->second;
  const auto slot = static_cast<std::uint32_t>(next_slot);
  index.emplace(it, std::string(name), slot);
  names.emplace_back(name);
  return slot;
}

const std::uint32_t* Registry::NameTable::find(std::string_view name) const {
  const auto it = index_lower_bound(index, name);
  return it != index.end() && it->first == name ? &it->second : nullptr;
}

CounterHandle Registry::counter(std::string_view name) {
  const auto slot = counter_names_.intern(name, counters_.size());
  if (slot == counters_.size()) counters_.push_back(0);
  return CounterHandle{slot};
}

GaugeHandle Registry::gauge(std::string_view name) {
  const auto slot = gauge_names_.intern(name, gauges_.size());
  if (slot == gauges_.size()) {
    gauges_.push_back(0.0);
    gauge_written_.push_back(false);
  }
  return GaugeHandle{slot};
}

HistogramHandle Registry::histogram(std::string_view name) {
  const auto slot = histogram_names_.intern(name, histograms_.size());
  if (slot == histograms_.size()) histograms_.emplace_back();
  return HistogramHandle{slot};
}

RateHandle Registry::rate(std::string_view name) {
  const auto slot = rate_names_.intern(name, rates_.size());
  if (slot == rates_.size()) rates_.emplace_back();
  return RateHandle{slot};
}

namespace {

std::vector<std::pair<std::string_view, std::uint32_t>> sorted_names(
    const std::vector<std::string>& names) {
  std::vector<std::pair<std::string_view, std::uint32_t>> out;
  out.reserve(names.size());
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    out.emplace_back(names[i], i);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

const std::uint64_t* Registry::find_counter(std::string_view name) const {
  const std::uint32_t* slot = counter_names_.find(name);
  return slot == nullptr ? nullptr : &counters_[*slot];
}

const double* Registry::find_gauge(std::string_view name) const {
  const std::uint32_t* slot = gauge_names_.find(name);
  return slot == nullptr ? nullptr : &gauges_[*slot];
}

const LatencyHistogram* Registry::find_histogram(std::string_view name) const {
  const std::uint32_t* slot = histogram_names_.find(name);
  return slot == nullptr ? nullptr : &histograms_[*slot];
}

const common::RateEstimator* Registry::find_rate(std::string_view name) const {
  const std::uint32_t* slot = rate_names_.find(name);
  return slot == nullptr ? nullptr : &rates_[*slot];
}

std::vector<std::pair<std::string_view, std::uint32_t>>
Registry::sorted_counters() const {
  return sorted_names(counter_names_.names);
}
std::vector<std::pair<std::string_view, std::uint32_t>>
Registry::sorted_gauges() const {
  return sorted_names(gauge_names_.names);
}
std::vector<std::pair<std::string_view, std::uint32_t>>
Registry::sorted_histograms() const {
  return sorted_names(histogram_names_.names);
}
std::vector<std::pair<std::string_view, std::uint32_t>>
Registry::sorted_rates() const {
  return sorted_names(rate_names_.names);
}

std::string Registry::report(bool skip_zero_counters) const {
  // Byte-compatible with the historical sim::Metrics::report(): counters,
  // then rates, then observation moments, each alphabetical.
  std::ostringstream out;
  for (const auto& [name, slot] : sorted_counters()) {
    if (skip_zero_counters && counters_[slot] == 0) continue;
    out << "  " << name << " = " << counters_[slot] << '\n';
  }
  for (const auto& [name, slot] : sorted_rates()) {
    const auto& est = rates_[slot];
    const auto [lo, hi] = est.wilson95();
    out << "  " << name << " = " << common::format_number(est.rate()) << " ["
        << common::format_number(lo) << ", " << common::format_number(hi)
        << "] over " << est.trials() << " trials\n";
  }
  for (const auto& [name, slot] : sorted_histograms()) {
    const auto& st = histograms_[slot].moments();
    out << "  " << name << " mean=" << common::format_number(st.mean())
        << " sd=" << common::format_number(st.stddev()) << " n=" << st.count()
        << '\n';
  }
  return out.str();
}

void Registry::merge_from(const Registry& other) {
  DAP_REQUIRE(this != &other, "Registry::merge_from: cannot merge with self");
  for (std::uint32_t slot = 0; slot < other.counter_names_.names.size();
       ++slot) {
    const std::string& name = other.counter_names_.names[slot];
    const CounterHandle h = counter(name);
    DAP_INVARIANT(counter_names_.names[h.index] == name,
                  "Registry::merge_from: counter handle/name mismatch");
    counters_[h.index] += other.counters_[slot];
  }
  for (std::uint32_t slot = 0; slot < other.gauge_names_.names.size();
       ++slot) {
    const GaugeHandle h = gauge(other.gauge_names_.names[slot]);
    // Only a gauge the other registry actually wrote overrides ours: a
    // shard that merely registered the name (make_telemetry et al.) must
    // not clobber the destination with its default 0.
    if (other.gauge_written_[slot]) {
      gauges_[h.index] = other.gauges_[slot];  // last *writer* wins
      gauge_written_[h.index] = true;
    }
  }
  for (std::uint32_t slot = 0; slot < other.histogram_names_.names.size();
       ++slot) {
    const std::string& name = other.histogram_names_.names[slot];
    const HistogramHandle h = histogram(name);
    DAP_INVARIANT(histogram_names_.names[h.index] == name,
                  "Registry::merge_from: histogram handle/name mismatch");
    histograms_[h.index].merge(other.histograms_[slot]);
  }
  for (std::uint32_t slot = 0; slot < other.rate_names_.names.size(); ++slot) {
    const RateHandle h = rate(other.rate_names_.names[slot]);
    rates_[h.index].merge(other.rates_[slot]);
  }
  DAP_ENSURE(counters_.size() >= other.counters_.size() &&
                 histograms_.size() >= other.histograms_.size(),
             "Registry::merge_from: every merged instrument must resolve");
}

void Registry::clear() noexcept {
  counter_names_ = NameTable{};
  gauge_names_ = NameTable{};
  histogram_names_ = NameTable{};
  rate_names_ = NameTable{};
  counters_.clear();
  gauges_.clear();
  gauge_written_.clear();
  histograms_.clear();
  rates_.clear();
  uid_ = next_registry_uid();  // handles are invalid now; force re-resolve
}

Registry& Registry::global() {
  if (tls_registry_override != nullptr) return *tls_registry_override;
  static Registry instance;  // dap-lint: allow(global-state)
  return instance;
}

Registry* Registry::set_thread_override(Registry* reg) noexcept {
  return std::exchange(tls_registry_override, reg);
}

// ------------------------------------------------- parallel shard hooks
//
// Wires common::parallel_for's telemetry bracketing to this layer. Lives
// here (not its own TU) because registry.cc is always pulled into any
// link that touches telemetry — a dedicated TU with only a static
// initializer would be dropped from the static library.

namespace {

struct ObsShard {
  Registry registry;
  Tracer tracer;
  Registry* prev_registry = nullptr;
  Tracer* prev_tracer = nullptr;

  ObsShard()
      : tracer(Tracer::global().enabled() ? Tracer::global().capacity() : 1) {
    tracer.enable(Tracer::global().enabled());
  }
};

void* shard_create() { return new ObsShard; }

void shard_activate(void* shard) {
  auto* s = static_cast<ObsShard*>(shard);
  s->prev_registry = Registry::set_thread_override(&s->registry);
  s->prev_tracer = Tracer::set_thread_override(&s->tracer);
}

void shard_deactivate(void* shard) {
  auto* s = static_cast<ObsShard*>(shard);
  Registry::set_thread_override(s->prev_registry);
  Tracer::set_thread_override(s->prev_tracer);
}

void shard_merge(void* shard) {
  auto* s = static_cast<ObsShard*>(shard);
  Registry::global().merge_from(s->registry);
  Tracer::global().append_from(s->tracer);
}

void shard_destroy(void* shard) { delete static_cast<ObsShard*>(shard); }

[[maybe_unused]] const bool kShardHooksInstalled = [] {
  common::set_shard_hooks(common::ShardHooks{
      &shard_create, &shard_activate, &shard_deactivate, &shard_merge,
      &shard_destroy});
  return true;
}();

}  // namespace

}  // namespace dap::obs
