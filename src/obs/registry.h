#pragma once
// Handle-based telemetry registry.
//
// Instruments (counters, gauges, log-bucketed latency histograms,
// success-rate estimators) are registered once by name and updated
// through small integer handles, so hot paths never hash or compare
// strings and never allocate. Names are only touched at registration
// time and when rendering reports / JSON exports.
//
// A process-wide `Registry::global()` aggregates protocol and solver
// telemetry; simulation components that need isolated counters (one
// `sim::Medium` per run, say) own a private Registry instead.
//
// Not thread-safe: instruments stay lock-free and non-atomic so the
// per-packet path stays cheap. Parallel experiments instead give every
// chunk of work its own shard Registry (bound through
// `set_thread_override`, installed by the common::parallel ShardHooks)
// and combine shards with `merge_from` after the join — counters sum,
// histograms merge bucket-wise, rates add their trial totals.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace dap::obs {

/// Typed wrappers around an instrument's slot index. Distinct types keep
/// a CounterHandle from being passed where a HistogramHandle is expected.
struct CounterHandle {
  std::uint32_t index = 0;
};
struct GaugeHandle {
  std::uint32_t index = 0;
};
struct HistogramHandle {
  std::uint32_t index = 0;
};
struct RateHandle {
  std::uint32_t index = 0;
};

/// Log-bucketed histogram for latency-like positive values.
///
/// Buckets are base-2 octaves split into `kSubBuckets` linear
/// sub-buckets, so every recorded value lands in a bucket whose width is
/// at most 1/kSubBuckets of its magnitude (<= 12.5% relative error on
/// percentile estimates). Exact moments (mean/stddev/min/max via
/// Welford) ride alongside the buckets. Updates are allocation-free.
class LatencyHistogram {
 public:
  static constexpr int kMinExponent = -20;  // ~1e-6: sub-ns when in us
  static constexpr int kMaxExponent = 43;   // ~8.8e12: ~102 days in us
  static constexpr std::size_t kSubBuckets = 8;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExponent - kMinExponent + 1) * kSubBuckets +
      2;  // + underflow and overflow buckets

  LatencyHistogram();

  void add(double value) noexcept;

  /// Quantile estimate in [0, 1]; returns the midpoint of the covering
  /// bucket clamped into [min, max]. 0 with no samples.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

  [[nodiscard]] std::size_t count() const noexcept {
    return moments_.count();
  }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return moments_.min(); }
  [[nodiscard]] double max() const noexcept { return moments_.max(); }
  /// Exact streaming moments (Welford), shared with sim::Metrics so its
  /// report() output is unchanged.
  [[nodiscard]] const common::RunningStats& moments() const noexcept {
    return moments_;
  }

  /// Folds another histogram in: bucket counts add element-wise (the
  /// bucket layout is static, so this is exact), Welford moments combine
  /// via RunningStats::merge, sums add. Quantiles of the merged histogram
  /// equal those of the union stream; mean/stddev may differ from the
  /// sequential stream in the last ulp (Welford is not associative).
  void merge(const LatencyHistogram& other) noexcept;

  // Bucket introspection, used by the boundary tests.
  [[nodiscard]] static std::size_t bucket_index(double value) noexcept;
  /// Inclusive lower edge of bucket `i` (-inf-side buckets report 0).
  [[nodiscard]] static double bucket_lower(std::size_t i) noexcept;
  /// Exclusive upper edge of bucket `i`.
  [[nodiscard]] static double bucket_upper(std::size_t i) noexcept;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return i < kBuckets ? counts_[i] : 0;
  }

 private:
  std::vector<std::uint64_t> counts_;  // sized kBuckets at construction
  common::RunningStats moments_;
  double sum_ = 0.0;
};

class Registry {
 public:
  Registry();
  /// Copies and moves carry the instruments but the destination gets a
  /// fresh uid: it is a new registry as far as cached handles go.
  Registry(const Registry& other);
  Registry& operator=(const Registry& other);
  Registry(Registry&& other) noexcept;
  Registry& operator=(Registry&& other) noexcept;
  ~Registry() = default;

  // ---- Registration (idempotent: re-registering a name returns the
  // existing handle). The slow path: one hash lookup + possible insert.
  CounterHandle counter(std::string_view name);
  GaugeHandle gauge(std::string_view name);
  HistogramHandle histogram(std::string_view name);
  RateHandle rate(std::string_view name);

  // ---- Hot-path updates: index into stable storage, no strings, no
  // allocation.
  void add(CounterHandle h, std::uint64_t by = 1) noexcept {
    counters_[h.index] += by;
  }
  void set(GaugeHandle h, double value) noexcept {
    gauges_[h.index] = value;
    gauge_written_[h.index] = true;
  }
  void observe(HistogramHandle h, double value) noexcept {
    histograms_[h.index].add(value);
  }
  void mark(RateHandle h, bool success) noexcept {
    rates_[h.index].add(success);
  }

  // ---- Reads through handles.
  [[nodiscard]] std::uint64_t value(CounterHandle h) const noexcept {
    return counters_[h.index];
  }
  [[nodiscard]] double value(GaugeHandle h) const noexcept {
    return gauges_[h.index];
  }
  [[nodiscard]] const LatencyHistogram& value(HistogramHandle h) const noexcept {
    return histograms_[h.index];
  }
  [[nodiscard]] const common::RateEstimator& value(RateHandle h) const noexcept {
    return rates_[h.index];
  }

  // ---- Lookups by name (report/test paths; nullptr when absent).
  [[nodiscard]] const std::uint64_t* find_counter(std::string_view name) const;
  [[nodiscard]] const double* find_gauge(std::string_view name) const;
  [[nodiscard]] const LatencyHistogram* find_histogram(
      std::string_view name) const;
  [[nodiscard]] const common::RateEstimator* find_rate(
      std::string_view name) const;

  /// (name, slot) pairs per instrument type, sorted by name — the
  /// iteration order of reports and exports.
  [[nodiscard]] std::vector<std::pair<std::string_view, std::uint32_t>>
  sorted_counters() const;
  [[nodiscard]] std::vector<std::pair<std::string_view, std::uint32_t>>
  sorted_gauges() const;
  [[nodiscard]] std::vector<std::pair<std::string_view, std::uint32_t>>
  sorted_histograms() const;
  [[nodiscard]] std::vector<std::pair<std::string_view, std::uint32_t>>
  sorted_rates() const;

  [[nodiscard]] std::size_t instruments() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size() +
           rates_.size();
  }

  /// Renders counters/rates/histogram-moments as the aligned text block
  /// sim::Metrics::report() has always produced (byte-compatible).
  /// `skip_zero_counters` drops counters that were never incremented —
  /// components that pre-register handles at construction would otherwise
  /// print "= 0" lines the lazily-registering legacy Metrics never had.
  [[nodiscard]] std::string report(bool skip_zero_counters = false) const;

  /// Folds `other` into this registry by *name* (slot indices may differ
  /// between the two): counters add, gauges take the other's value but
  /// only when `other` actually set() it (a registered-but-never-written
  /// gauge never clobbers the destination with its default 0), histograms
  /// merge, rate estimators add their totals. Instruments only `other`
  /// knows are registered here first, so after the merge every name in
  /// `other` resolves here. Contracts reject self-merge and check that
  /// shared names resolve to consistent slots. Note gauges written by
  /// several parallel shards still merge in chunk order (the last
  /// *writing* chunk wins, not the temporally latest set()) — gauges are
  /// a poor fit for cross-shard aggregation; prefer counters/histograms
  /// inside parallel regions.
  void merge_from(const Registry& other);

  /// Identifier distinguishing registry *instances* (never 0, never
  /// reused, survives clear()). Cached-handle holders key their caches on
  /// this so a handle resolved against one registry is never used to
  /// index another — see PerRegistryCache.
  [[nodiscard]] std::uint64_t uid() const noexcept { return uid_; }

  /// Drops every instrument and name. Handles become invalid; intended
  /// for tests and multi-phase benches that snapshot between phases.
  void clear() noexcept;

  /// The process-wide registry protocol instrumentation feeds — unless
  /// the calling thread has a shard override installed, in which case
  /// that shard is returned. parallel_for's telemetry hooks install the
  /// override for the duration of each chunk.
  static Registry& global();

  /// Installs `reg` as the calling thread's `global()` (nullptr
  /// restores the process-wide registry). Returns the previous override
  /// so nested scopes can save/restore.
  static Registry* set_thread_override(Registry* reg) noexcept;

 private:
  struct NameTable {
    // Name -> slot index kept sorted by name: binary-search lookup with
    // no hashing, and — unlike an unordered_map — deterministic layout
    // and iteration by construction, so nothing downstream can ever pick
    // up a hash-seed-dependent order. Registration is the slow path;
    // instrument counts are small (tens), so O(n) insertion is fine.
    std::vector<std::pair<std::string, std::uint32_t>> index;
    std::vector<std::string> names;  // slot -> name
    // Returns the slot for `name`, inserting a new one (== size) if new.
    std::uint32_t intern(std::string_view name, std::size_t next_slot);
    [[nodiscard]] const std::uint32_t* find(std::string_view name) const;
  };

  std::uint64_t uid_;
  NameTable counter_names_;
  NameTable gauge_names_;
  NameTable histogram_names_;
  NameTable rate_names_;
  // Deques: O(1) indexed access with stable addresses, so pointers
  // handed out by find_* survive later registrations.
  std::deque<std::uint64_t> counters_;
  std::deque<double> gauges_;
  /// Parallel to gauges_: whether set() ever ran on the slot, so
  /// merge_from can skip registered-but-unwritten gauges.
  std::deque<bool> gauge_written_;
  std::deque<LatencyHistogram> histograms_;
  std::deque<common::RateEstimator> rates_;
};

/// Per-thread cache of resolved handles, keyed on the registry uid.
///
/// The old idiom `static const Telemetry t{resolve(Registry::global())};`
/// pins handles to whichever registry was live at first call — under
/// shard overrides those handles would index a *different* registry
/// (out-of-bounds or silently wrong slot). Holders instead keep a
/// `thread_local PerRegistryCache<Telemetry>` and call `get(make)`,
/// which re-resolves whenever the thread's effective registry changes:
///
///   const PrfTelemetry& prf_telemetry() {
///     thread_local PerRegistryCache<PrfTelemetry> cache;
///     return cache.get([](Registry& reg) {
///       return PrfTelemetry{reg.counter("crypto.prf_calls"), ...};
///     });
///   }
template <typename T>
class PerRegistryCache {
 public:
  template <typename MakeFn>
  [[nodiscard]] const T& get(MakeFn&& make) {
    Registry& reg = Registry::global();
    if (bound_uid_ != reg.uid()) {
      value_ = make(reg);
      bound_uid_ = reg.uid();
    }
    return value_;
  }

 private:
  T value_{};
  std::uint64_t bound_uid_ = 0;  // 0 never matches a live registry
};

}  // namespace dap::obs
