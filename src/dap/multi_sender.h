#pragma once
// Multi-sender DAP.
//
// The paper's setting is a mobile crowdsensing network where "the sender
// and receiver can be any mobile node" (Fig. 4), so a receiver tracks
// several concurrent DAP senders at once. This wrapper routes packets by
// sender id to per-sender DAP state and divides a node's total buffer
// budget across the registered senders (re-balanced on registration, and
// re-tunable as a group by the adaptive layer).

#include <cstdint>
#include <map>
#include <optional>

#include "common/bytes.h"
#include "common/rng.h"
#include "dap/dap.h"
#include "sim/clock_model.h"

namespace dap::protocol {

struct MultiSenderStats {
  std::uint64_t unknown_sender_packets = 0;
  std::uint64_t senders_registered = 0;
};

/// An authenticated message tagged with its sender.
struct SenderMessage {
  wire::NodeId sender = 0;
  tesla::AuthenticatedMessage message;
};

class MultiSenderReceiver {
 public:
  /// `buffer_budget` is the total number of 56-bit records this node is
  /// willing to hold across all senders (>= 1). Throws on empty secret.
  MultiSenderReceiver(common::Bytes local_secret, sim::LooseClock clock,
                      common::Rng rng, std::size_t buffer_budget);

  /// Registers (or replaces) a sender with its verified commitment.
  /// The buffer budget is re-divided as evenly as possible across all
  /// senders: every sender gets floor(budget / n), and the remaining
  /// budget % n buffers go one each to the lowest sender ids, so no
  /// buffer in the budget is ever stranded by rounding. Nobody drops
  /// below 1 buffer even when the budget is smaller than the sender
  /// count.
  void register_sender(wire::NodeId id, const DapConfig& config,
                       common::Bytes commitment);

  [[nodiscard]] bool knows_sender(wire::NodeId id) const noexcept;
  [[nodiscard]] std::size_t senders() const noexcept { return nodes_.size(); }
  /// The floor share every sender is guaranteed (min 1); senders holding
  /// a remainder buffer have one more — see buffers_for().
  [[nodiscard]] std::size_t buffers_per_sender() const noexcept;
  /// Buffers currently assigned to sender `id`; 0 for unknown senders.
  [[nodiscard]] std::size_t buffers_for(wire::NodeId id) const noexcept;

  /// Routed DAP data paths.
  void receive(const wire::MacAnnounce& packet, sim::SimTime local_now);
  std::optional<SenderMessage> receive(const wire::MessageReveal& packet,
                                       sim::SimTime local_now);

  /// Per-sender receiver stats; nullptr for unknown senders.
  [[nodiscard]] const DapStats* sender_stats(wire::NodeId id) const noexcept;
  [[nodiscard]] const MultiSenderStats& stats() const noexcept {
    return stats_;
  }

  /// Total buffered record bits across all senders (memory accounting).
  [[nodiscard]] std::size_t stored_record_bits() const noexcept;

 private:
  void rebalance();

  common::Bytes local_secret_;
  sim::LooseClock clock_;
  common::Rng rng_;
  std::size_t buffer_budget_;
  std::map<wire::NodeId, DapReceiver> nodes_;
  MultiSenderStats stats_;
};

}  // namespace dap::protocol
