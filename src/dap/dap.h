#pragma once
// DAP — the paper's DoS-Resistant Authentication Protocol (§IV,
// Algorithms 1 and 2).
//
// Broadcasting (Algorithm 1): in interval I_i the sender transmits only
// (MAC_i, i); one interval later it transmits (M_i, K_i, i).
//
// Authentication at receivers (Algorithm 2): on (MAC_i, i) at local
// interval x, discard if i + d < x (key already public); otherwise store
// the 24-bit re-MAC μMAC = MAC_{K_recv}(MAC_i) with the 32-bit index —
// a 56-bit record — in one of m buffers using reservoir selection
// (k-th copy kept with probability m/k, random slot replaced). On
// (M_i, K_i, i): weak authentication checks the key against the chain
// (h(K_i) = K_{i-1} generalized to a multi-step walk); strong
// authentication recomputes μMAC' = MAC_{K_recv}(MAC_{K_i}(M_i)) and
// accepts M_i iff some stored record matches.
//
// The buffer policy is pluggable (reservoir / naive-drop / always-replace)
// for ablation E9; the paper's protocol is the reservoir policy.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/keychain.h"
#include "crypto/mac.h"
#include "obs/registry.h"
#include "sim/clock_model.h"
#include "tesla/chain_auth.h"
#include "tesla/resync.h"
#include "tesla/tesla.h"
#include "tesla/verdict.h"
#include "wire/packet.h"

namespace dap::protocol {

enum class BufferPolicy : std::uint8_t {
  kReservoir,      // the paper's m/k random selection
  kNaiveDrop,      // keep first m copies, drop the rest
  kAlwaysReplace,  // every later copy evicts a random slot
};

struct DapConfig {
  wire::NodeId sender_id = 1;
  std::size_t chain_length = 64;
  std::uint32_t disclosure_delay = 1;  // d: reveal follows one interval later
  std::size_t key_size = crypto::kChainKeySize;  // 80-bit chain keys
  std::size_t mac_size = crypto::kMacSize;       // 80-bit broadcast MAC
  std::size_t micro_mac_size = crypto::kMicroMacSize;  // 24-bit stored μMAC
  std::size_t buffers = 4;                       // m
  BufferPolicy policy = BufferPolicy::kReservoir;
  sim::IntervalSchedule schedule{0, sim::kSecond};
  /// Graceful degradation: cap on total stored records across all live
  /// rounds (0 = unlimited). At the cap a receiver sheds new admissions
  /// and halves the reservoir size m for rounds that have not started,
  /// restoring m once the pool drains below half the cap.
  std::size_t record_pool_limit = 0;
  /// Desync detection / timesync re-execution policy (disabled by
  /// default: zero behaviour change for existing deployments).
  tesla::ResyncConfig resync{};
};

class DapSender {
 public:
  DapSender(const DapConfig& config, common::ByteView seed);

  /// Algorithm 1 lines 1-4: (MAC_i, i) for interval i. May be called
  /// several times per interval with distinct messages (the P_{i,1..m}
  /// stream of Fig. 1); each message gets its own MAC/record.
  [[nodiscard]] wire::MacAnnounce announce(std::uint32_t i,
                                           common::ByteView message);

  /// Algorithm 1 line 6: (M_i, K_i, i), sent in interval i+1. `k` selects
  /// which of the interval's announced messages to reveal (0-based).
  /// Throws std::logic_error without a matching prior announce.
  [[nodiscard]] wire::MessageReveal reveal(std::uint32_t i,
                                           std::size_t k = 0) const;

  /// Messages announced so far in interval i.
  [[nodiscard]] std::size_t announced_count(std::uint32_t i) const noexcept;

  [[nodiscard]] const DapConfig& config() const noexcept { return config_; }
  [[nodiscard]] const crypto::KeyChain& chain() const noexcept {
    return chain_;
  }

 private:
  DapConfig config_;
  crypto::KeyChain chain_;
  std::map<std::uint32_t, std::vector<common::Bytes>> announced_;
  /// Precomputed HMAC state per interval MAC key: multi-message streams
  /// (P_{i,1..m}) pay the ipad/opad setup once per interval, not per
  /// announce.
  std::map<std::uint32_t, crypto::HmacKey> mac_key_cache_;
};

struct DapStats {
  std::uint64_t announces_received = 0;
  std::uint64_t announces_unsafe = 0;   // i + d < x discard
  std::uint64_t records_offered = 0;
  std::uint64_t records_stored = 0;
  std::uint64_t reveals_received = 0;
  std::uint64_t weak_auth_failures = 0;   // h(K_i) != K_{i-1}
  std::uint64_t strong_auth_success = 0;  // μMAC matched
  std::uint64_t strong_auth_failures = 0; // no stored record matched
  std::uint64_t admissions_shed = 0;      // dropped at the record pool cap
  std::uint64_t crash_restarts = 0;
  std::uint64_t mac_key_derivations = 0;  // F'(K_i) computations (batching KPI)
};

class DapReceiver {
 public:
  /// `commitment` is the authenticated K_0; `local_secret` is this node's
  /// private K_recv (Algorithm 2). Throws on empty inputs / zero buffers.
  DapReceiver(const DapConfig& config, common::Bytes commitment,
              common::Bytes local_secret, sim::LooseClock clock,
              common::Rng rng);

  /// Algorithm 2 lines 1-14.
  void receive(const wire::MacAnnounce& packet, sim::SimTime local_now);

  /// Algorithm 2 lines 15-25; returns the message if authenticated.
  /// A successful match consumes only the matched record, so several
  /// reveals for the same interval (multi-message streams) each
  /// authenticate independently against the shared buffer.
  std::optional<tesla::AuthenticatedMessage> receive(
      const wire::MessageReveal& packet, sim::SimTime local_now);

  // ---- Batched reveal verification ---------------------------------------

  /// Queues a reveal for deferred processing by drain_pending_batch().
  void enqueue(const wire::MessageReveal& packet);

  /// Reveals currently queued.
  [[nodiscard]] std::size_t pending_reveals() const noexcept {
    return pending_.size();
  }

  /// Processes every queued reveal in arrival order, deriving each
  /// interval's MAC key F'(K_i) once per drain instead of once per
  /// reveal (multi-message streams share the interval key). Outcomes
  /// match one-at-a-time receive() calls at the same `local_now`
  /// exactly; slot k of the result is the outcome of the k-th queued
  /// packet.
  std::vector<std::optional<tesla::AuthenticatedMessage>> drain_pending_batch(
      sim::SimTime local_now);

  /// Verdict of the most recent reveal processed (via either receive()
  /// or a drain); lets callers tag verify spans with the reject reason.
  [[nodiscard]] tesla::RevealVerdict last_verdict() const noexcept {
    return last_verdict_;
  }

  /// Per-reveal verdicts of the last drain_pending_batch() call, in the
  /// same order as its return value.
  [[nodiscard]] const std::vector<tesla::RevealVerdict>& last_drain_verdicts()
      const noexcept {
    return last_drain_verdicts_;
  }

  [[nodiscard]] const DapStats& stats() const noexcept { return stats_; }

  /// Re-tunes the buffer count for rounds that have not started yet
  /// (rounds with an existing buffer keep their capacity). Used by the
  /// adaptive game-driven controller in src/core. Throws on m == 0.
  void set_buffers(std::size_t m);
  [[nodiscard]] std::size_t buffers() const noexcept {
    return config_.buffers;
  }

  /// Storage currently used by buffered records, in bits (56 per record
  /// with default sizes) — the quantity §VI-A's memory accounting uses.
  [[nodiscard]] std::size_t stored_record_bits() const noexcept;

  /// Buffered record count for interval i (test introspection).
  [[nodiscard]] std::size_t buffered_records(std::uint32_t i) const noexcept;

  /// Total records currently buffered across all live rounds (the pool
  /// the degradation policy watches).
  [[nodiscard]] std::size_t stored_records() const noexcept;

  /// Reservoir size new rounds get right now (== buffers() unless the
  /// degradation policy shrank it under pool pressure).
  [[nodiscard]] std::size_t effective_buffers() const noexcept {
    return effective_buffers_;
  }

  // ---- Resync / recovery (config_.resync) --------------------------------

  /// Wires the transport that re-executes the timesync handshake when a
  /// desync episode is declared. Without a handler the receiver still
  /// detects desync but cannot recover.
  void set_resync_handler(tesla::ResyncFn handler);

  /// Idle-time driver for the resync state machine: lets retry/backoff
  /// progress during periods with no inbound traffic (blackouts).
  void tick(sim::SimTime local_now);

  /// Simulates a crash/restart: volatile state (record buffers, cached
  /// chain keys, the live calibration) is dropped; the newest
  /// authenticated chain key survives as the persistent anchor, so the
  /// receiver re-authenticates forward via the one-way chain.
  void crash_restart(sim::SimTime local_now);

  [[nodiscard]] bool desynced() const noexcept { return resync_.desynced(); }
  [[nodiscard]] const tesla::ResyncStats& resync_stats() const noexcept {
    return resync_.stats();
  }

 private:
  struct Record {
    common::Bytes micro_mac;
    std::uint32_t interval = 0;
  };

  /// The per-interval m-slot buffer with the configured policy.
  class RecordBuffer {
   public:
    RecordBuffer(std::size_t capacity, BufferPolicy policy);
    bool offer(Record record, common::Rng& rng);
    /// Removes (only) the first record matching `micro_mac`; returns
    /// whether one was found.
    bool take_matching(common::ByteView micro_mac);
    [[nodiscard]] const std::vector<Record>& contents() const noexcept {
      return slots_;
    }
    [[nodiscard]] bool full() const noexcept {
      return slots_.size() >= capacity_;
    }

   private:
    std::size_t capacity_;
    BufferPolicy policy_;
    std::size_t offers_ = 0;
    std::vector<Record> slots_;
  };

  [[nodiscard]] common::Bytes micro_mac_of(common::ByteView mac) const;
  /// Frees rounds whose key is long public (memory hygiene): everything
  /// older than `current_interval` minus the disclosure delay.
  void prune_stale_rounds(std::uint32_t current_interval);

  /// TESLA safety check through the live calibration (when present) or
  /// the bootstrap LooseClock, widened by the drift-allowance margin.
  [[nodiscard]] bool packet_safe(std::uint32_t i,
                                 sim::SimTime local_now) const noexcept;

  /// Applies a completed resync (installs the calibration).
  void adopt_calibration(tesla::SyncCalibration calibration);

  /// Per-drain cache: MAC keys already derived for this batch, keyed by
  /// interval and held as precomputed HMAC state (each MAC then costs 2
  /// compressions instead of 4). Accept/reject outcomes are NEVER cached
  /// — two reveals for the same interval can carry different key bytes,
  /// and each must be judged on its own.
  struct BatchContext {
    std::map<std::uint32_t, crypto::HmacKey> mac_keys;
  };

  /// Shared reveal path: receive() passes no context (derive per
  /// reveal), drain_pending_batch() passes one per drain plus the
  /// pre-batched weak-auth verdict from ChainAuthenticator::accept_many
  /// (null = run the scalar accept inline).
  std::optional<tesla::AuthenticatedMessage> process_reveal(
      const wire::MessageReveal& packet, sim::SimTime local_now,
      BatchContext* batch, const bool* precomputed_accept = nullptr);

  /// Degradation policy: true when the offer must be shed because the
  /// record pool is saturated; adjusts effective_buffers_ both ways.
  bool degrade_or_admit(sim::SimTime local_now);

  /// Global-registry handles mirroring DapStats, resolved once at
  /// construction so the receive paths never touch instrument names.
  /// Aggregated across every receiver in the process.
  struct Telemetry {
    obs::CounterHandle announces_received;
    obs::CounterHandle announces_unsafe;
    obs::CounterHandle records_offered;
    obs::CounterHandle records_stored;
    obs::CounterHandle buffer_evictions;
    obs::CounterHandle reveals_received;
    obs::CounterHandle weak_auth_failures;
    obs::CounterHandle strong_auth_success;
    obs::CounterHandle strong_auth_failures;
    obs::CounterHandle admissions_shed;
    obs::CounterHandle crash_restarts;
    obs::CounterHandle mac_key_derivations;
    obs::CounterHandle reveal_batches;
    obs::CounterHandle batched_reveals;
    obs::HistogramHandle rx_announce_latency;
    obs::HistogramHandle rx_reveal_latency;
    obs::GaugeHandle effective_buffers;
  };

  [[nodiscard]] static Telemetry make_telemetry();

  DapConfig config_;
  Telemetry telemetry_;
  common::Bytes local_secret_;
  /// K_recv as precomputed HMAC state: every μMAC re-MAC costs 2
  /// compressions instead of 4 for the lifetime of the receiver.
  crypto::HmacKey local_secret_key_;
  sim::LooseClock clock_;
  common::Rng rng_;
  tesla::ChainAuthenticator auth_;
  std::map<std::uint32_t, RecordBuffer> buffers_;  // by interval
  std::deque<wire::MessageReveal> pending_;        // enqueue() backlog
  DapStats stats_;
  tesla::ResyncController resync_;
  std::optional<tesla::SyncCalibration> calibration_;
  std::size_t effective_buffers_;
  tesla::RevealVerdict last_verdict_ = tesla::RevealVerdict::kAccepted;
  std::vector<tesla::RevealVerdict> last_drain_verdicts_;
};

}  // namespace dap::protocol
