#include "dap/dap.h"

#include <iterator>
#include <optional>
#include <stdexcept>

#include "common/contracts.h"
#include "obs/scoped_timer.h"
#include "obs/tracer.h"

namespace dap::protocol {

DapReceiver::Telemetry DapReceiver::make_telemetry() {
  auto& reg = obs::Registry::global();
  return {
      reg.counter("dap.announces_received"),
      reg.counter("dap.announces_unsafe"),
      reg.counter("dap.records_offered"),
      reg.counter("dap.records_stored"),
      reg.counter("dap.buffer_evictions"),
      reg.counter("dap.reveals_received"),
      reg.counter("dap.weak_auth_failures"),
      reg.counter("dap.strong_auth_success"),
      reg.counter("dap.strong_auth_failures"),
      reg.counter("dap.admissions_shed"),
      reg.counter("dap.crash_restarts"),
      reg.counter("dap.mac_key_derivations"),
      reg.counter("dap.reveal_batches"),
      reg.counter("dap.batched_reveals"),
      reg.histogram("dap.rx_announce_us"),
      reg.histogram("dap.rx_reveal_us"),
      reg.gauge("dap.effective_buffers"),
  };
}

DapSender::DapSender(const DapConfig& config, common::ByteView seed)
    : config_(config),
      chain_(seed, config.chain_length, crypto::PrfDomain::kChainStep,
             config.key_size) {
  if (config_.disclosure_delay == 0) {
    throw std::invalid_argument("DapSender: disclosure_delay must be >= 1");
  }
}

wire::MacAnnounce DapSender::announce(std::uint32_t i,
                                      common::ByteView message) {
  if (i == 0 || i > chain_.length()) {
    throw std::out_of_range("DapSender::announce: interval");
  }
  announced_[i].emplace_back(message.begin(), message.end());
  wire::MacAnnounce p;
  p.sender = config_.sender_id;
  p.interval = i;
  auto key_it = mac_key_cache_.find(i);
  if (key_it == mac_key_cache_.end()) {
    key_it = mac_key_cache_
                 .try_emplace(i, crypto::HmacKey(chain_.mac_key(i)))
                 .first;
  }
  p.mac = crypto::compute_mac(key_it->second, message, config_.mac_size);
  DAP_ENSURE(p.mac.size() == config_.mac_size,
             "announce: MAC must have the configured broadcast size");
  return p;
}

wire::MessageReveal DapSender::reveal(std::uint32_t i, std::size_t k) const {
  const auto it = announced_.find(i);
  if (it == announced_.end() || k >= it->second.size()) {
    throw std::logic_error("DapSender::reveal: message never announced");
  }
  wire::MessageReveal p;
  p.sender = config_.sender_id;
  p.interval = i;
  p.message = it->second[k];
  p.key = chain_.key(i);
  return p;
}

std::size_t DapSender::announced_count(std::uint32_t i) const noexcept {
  const auto it = announced_.find(i);
  return it == announced_.end() ? 0 : it->second.size();
}

DapReceiver::RecordBuffer::RecordBuffer(std::size_t capacity,
                                        BufferPolicy policy)
    : capacity_(capacity), policy_(policy) {
  if (capacity_ == 0) {
    throw std::invalid_argument("RecordBuffer: capacity must be >= 1");
  }
  slots_.reserve(capacity_);
}

bool DapReceiver::RecordBuffer::offer(Record record, common::Rng& rng) {
  ++offers_;
  DAP_INVARIANT(slots_.size() <= capacity_,
                "RecordBuffer: slot count exceeds capacity");
  if (slots_.size() < capacity_) {
    slots_.push_back(std::move(record));
    return true;
  }
  switch (policy_) {
    case BufferPolicy::kNaiveDrop:
      return false;
    case BufferPolicy::kAlwaysReplace: {
      const auto victim =
          static_cast<std::size_t>(rng.uniform(0, capacity_ - 1));
      slots_[victim] = std::move(record);
      return true;
    }
    case BufferPolicy::kReservoir: {
      // Algorithm 2 line 9: keep the k-th copy with probability m/k.
      const double keep = static_cast<double>(capacity_) /
                          static_cast<double>(offers_);
      DAP_INVARIANT(keep > 0.0 && keep <= 1.0,
                    "RecordBuffer: reservoir keep probability outside (0,1]");
      if (!rng.bernoulli(keep)) return false;
      const auto victim =
          static_cast<std::size_t>(rng.uniform(0, capacity_ - 1));
      slots_[victim] = std::move(record);
      return true;
    }
  }
  return false;
}

DapReceiver::DapReceiver(const DapConfig& config, common::Bytes commitment,
                         common::Bytes local_secret, sim::LooseClock clock,
                         common::Rng rng)
    : config_(config),
      telemetry_(make_telemetry()),
      local_secret_(std::move(local_secret)),
      local_secret_key_(local_secret_),
      clock_(clock),
      rng_(rng),
      auth_(crypto::PrfDomain::kChainStep, config.key_size,
            std::move(commitment)),
      resync_("dap", config.resync),
      effective_buffers_(config.buffers) {
  if (local_secret_.empty()) {
    throw std::invalid_argument("DapReceiver: empty local secret");
  }
  if (config_.buffers == 0) {
    throw std::invalid_argument("DapReceiver: buffers must be >= 1");
  }
  obs::Registry::global().set(telemetry_.effective_buffers,
                              static_cast<double>(effective_buffers_));
}

bool DapReceiver::packet_safe(std::uint32_t i,
                              sim::SimTime local_now) const noexcept {
  // The drift allowance widens the check on the conservative side: a
  // larger local reading only makes "key may already be public" MORE
  // likely, so bounded unmodelled drift can never admit a late forgery.
  const sim::SimTime guarded = local_now + resync_.safety_margin(local_now);
  if (calibration_.has_value()) {
    return calibration_->packet_safe(i, config_.disclosure_delay, guarded,
                                     config_.schedule);
  }
  return clock_.packet_safe(i, config_.disclosure_delay, guarded,
                            config_.schedule);
}

void DapReceiver::adopt_calibration(tesla::SyncCalibration calibration) {
  calibration_ = calibration;
}

void DapReceiver::set_resync_handler(tesla::ResyncFn handler) {
  resync_.set_handler(std::move(handler));
}

void DapReceiver::tick(sim::SimTime local_now) {
  if (auto calibration = resync_.maybe_resync(local_now)) {
    adopt_calibration(*calibration);
  }
}

void DapReceiver::crash_restart(sim::SimTime /*local_now*/) {
  buffers_.clear();
  pending_.clear();
  auth_.rebase_to_newest();
  calibration_.reset();
  resync_.invalidate();
  effective_buffers_ = config_.buffers;
  ++stats_.crash_restarts;
  auto& reg = obs::Registry::global();
  reg.add(telemetry_.crash_restarts);
  reg.set(telemetry_.effective_buffers,
          static_cast<double>(effective_buffers_));
}

std::size_t DapReceiver::stored_records() const noexcept {
  std::size_t records = 0;
  for (const auto& [interval, buffer] : buffers_) {
    records += buffer.contents().size();
  }
  return records;
}

bool DapReceiver::degrade_or_admit(sim::SimTime local_now) {
  if (config_.record_pool_limit == 0) return true;
  const std::size_t pool = stored_records();
  auto& reg = obs::Registry::global();
  if (pool >= config_.record_pool_limit) {
    // Saturated: shed this admission and shrink the reservoir for rounds
    // that have not started, instead of silently thrashing the pool.
    ++stats_.admissions_shed;
    reg.add(telemetry_.admissions_shed);
    obs::Tracer::global().record(obs::TraceKind::kBufferEvict, local_now, 0);
    if (effective_buffers_ > 1) {
      effective_buffers_ = effective_buffers_ / 2;
      reg.set(telemetry_.effective_buffers,
              static_cast<double>(effective_buffers_));
    }
    return false;
  }
  if (effective_buffers_ < config_.buffers &&
      pool < config_.record_pool_limit / 2) {
    // Pressure eased: restore capacity gradually (doubling back up).
    effective_buffers_ =
        effective_buffers_ * 2 < config_.buffers ? effective_buffers_ * 2
                                                 : config_.buffers;
    reg.set(telemetry_.effective_buffers,
            static_cast<double>(effective_buffers_));
  }
  return true;
}

common::Bytes DapReceiver::micro_mac_of(common::ByteView mac) const {
  common::Bytes out =
      crypto::micro_mac(local_secret_key_, mac, config_.micro_mac_size);
  DAP_ENSURE(out.size() == config_.micro_mac_size,
             "micro_mac_of: re-MAC must have the configured record size");
  return out;
}

bool DapReceiver::RecordBuffer::take_matching(common::ByteView micro_mac) {
  for (auto it = slots_.begin(); it != slots_.end(); ++it) {
    if (common::constant_time_equal(it->micro_mac, micro_mac)) {
      slots_.erase(it);
      return true;
    }
  }
  return false;
}

void DapReceiver::prune_stale_rounds(std::uint32_t current_interval) {
  // Keys of intervals <= current - d are public; their records can never
  // authenticate anything anymore.
  if (current_interval <= config_.disclosure_delay) return;
  const std::uint32_t floor = current_interval - config_.disclosure_delay;
  auto it = buffers_.begin();
  while (it != buffers_.end() && it->first < floor) {
    it = buffers_.erase(it);
  }
  DAP_ENSURE(buffers_.empty() || buffers_.begin()->first >= floor,
             "prune_stale_rounds: stale round survived pruning");
}

void DapReceiver::receive(const wire::MacAnnounce& packet,
                          sim::SimTime local_now) {
  // The announce is attacker-controlled and only ever *rejected* below;
  // contracts cover receiver configuration, never wire content.
  DAP_REQUIRE(config_.disclosure_delay > 0 && config_.mac_size > 0,
              "DapReceiver::receive: receiver must be configured");
  auto& reg = obs::Registry::global();
  const obs::ScopedTimer timer(reg, telemetry_.rx_announce_latency);
  ++stats_.announces_received;
  reg.add(telemetry_.announces_received);
  obs::Tracer::global().record(obs::TraceKind::kAnnounce, local_now,
                               packet.interval);
  tick(local_now);
  prune_stale_rounds(packet.interval);
  // Algorithm 2 line 2: discard when the key may already be public.
  if (!packet_safe(packet.interval, local_now)) {
    ++stats_.announces_unsafe;
    reg.add(telemetry_.announces_unsafe);
    // A streak of unsafe announces is the desync signature: either our
    // clock bound ran away or the stream really is stale/replayed — the
    // episode threshold plus healthy resets separate the two.
    resync_.note_suspect(local_now);
    tick(local_now);
    return;
  }
  if (!degrade_or_admit(local_now)) return;
  auto [it, created] = buffers_.try_emplace(packet.interval,
                                            effective_buffers_,
                                            config_.policy);
  ++stats_.records_offered;
  reg.add(telemetry_.records_offered);
  const bool was_full = it->second.full();
  if (it->second.offer(Record{micro_mac_of(packet.mac), packet.interval},
                       rng_)) {
    ++stats_.records_stored;
    reg.add(telemetry_.records_stored);
    if (was_full) {
      // A stored record on a full buffer displaced an earlier one.
      reg.add(telemetry_.buffer_evictions);
      obs::Tracer::global().record(obs::TraceKind::kBufferEvict, local_now,
                                   packet.interval);
    }
  }
}

std::optional<tesla::AuthenticatedMessage> DapReceiver::receive(
    const wire::MessageReveal& packet, sim::SimTime local_now) {
  DAP_REQUIRE(config_.disclosure_delay > 0,
              "DapReceiver::receive: receiver must be configured");
  return process_reveal(packet, local_now, nullptr);
}

void DapReceiver::enqueue(const wire::MessageReveal& packet) {
  pending_.push_back(packet);
}

std::vector<std::optional<tesla::AuthenticatedMessage>>
DapReceiver::drain_pending_batch(sim::SimTime local_now) {
  std::vector<std::optional<tesla::AuthenticatedMessage>> out;
  out.reserve(pending_.size());
  last_drain_verdicts_.clear();
  if (pending_.empty()) return out;
  auto& reg = obs::Registry::global();
  reg.add(telemetry_.reveal_batches);
  reg.add(telemetry_.batched_reveals, pending_.size());
  BatchContext batch;
  last_drain_verdicts_.reserve(pending_.size());
  // Weak authentication for the whole drain runs upfront through
  // ChainAuthenticator::accept_many, which feeds the gap walks to the
  // multi-lane SHA-256 backend. This is safe because nothing on the
  // per-reveal path before accept() (stats, tracer, tick/resync) touches
  // the authenticator, so batched verdicts equal sequential ones.
  std::vector<wire::MessageReveal> packets(
      std::make_move_iterator(pending_.begin()),
      std::make_move_iterator(pending_.end()));
  pending_.clear();
  std::vector<tesla::KeyReveal> reveals;
  reveals.reserve(packets.size());
  for (const wire::MessageReveal& p : packets) {
    reveals.push_back(tesla::KeyReveal{p.interval, p.key});
  }
  const std::vector<bool> verdicts = auth_.accept_many(reveals);
  DAP_INVARIANT(verdicts.size() == packets.size(),
                "drain_pending_batch: one weak-auth verdict per reveal");
  for (std::size_t k = 0; k < packets.size(); ++k) {
    const bool weak_ok = verdicts[k];
    out.push_back(process_reveal(packets[k], local_now, &batch, &weak_ok));
    last_drain_verdicts_.push_back(last_verdict_);
  }
  return out;
}

std::optional<tesla::AuthenticatedMessage> DapReceiver::process_reveal(
    const wire::MessageReveal& packet, sim::SimTime local_now,
    BatchContext* batch, const bool* precomputed_accept) {
  auto& reg = obs::Registry::global();
  const obs::ScopedTimer timer(reg, telemetry_.rx_reveal_latency);
  ++stats_.reveals_received;
  reg.add(telemetry_.reveals_received);
  obs::Tracer::global().record(obs::TraceKind::kReveal, local_now,
                               packet.interval);
  tick(local_now);
  // Algorithm 2 line 16: weak authentication of the disclosed key. Never
  // cached across a batch — same-interval reveals can carry different
  // key bytes, and each candidate must be judged on its own (batched
  // drains judge the whole queue upfront via accept_many and hand the
  // per-reveal verdict in here).
  const bool weak_ok = precomputed_accept != nullptr
                           ? *precomputed_accept
                           : auth_.accept(packet.interval, packet.key);
  if (!weak_ok) {
    ++stats_.weak_auth_failures;
    reg.add(telemetry_.weak_auth_failures);
    obs::Tracer::global().record(obs::TraceKind::kWeakAuthFail, local_now,
                                 packet.interval);
    last_verdict_ = tesla::RevealVerdict::kWeakAuthFail;
    resync_.note_suspect(local_now);
    tick(local_now);
    return std::nullopt;
  }
  // Lines 19-24: strong authentication against the stored μMAC records.
  // In a batch the interval's MAC key F'(K_i) is derived once and shared
  // by every reveal of that interval (the key is authentic regardless of
  // which reveal's bytes authenticated it).
  std::optional<crypto::HmacKey> local_key;
  const crypto::HmacKey* cached = nullptr;
  if (batch != nullptr) {
    const auto it = batch->mac_keys.find(packet.interval);
    if (it != batch->mac_keys.end()) cached = &it->second;
  }
  if (cached == nullptr) {
    auto derived = auth_.mac_key(packet.interval);
    if (!derived.has_value()) {
      // accept() passed, so the key chain reached this interval once,
      // but the retained window has since been pruned/rebased past it.
      ++stats_.strong_auth_failures;
      reg.add(telemetry_.strong_auth_failures);
      obs::Tracer::global().record(obs::TraceKind::kAuthFail, local_now,
                                   packet.interval);
      last_verdict_ = tesla::RevealVerdict::kKeyPruned;
      return std::nullopt;
    }
    ++stats_.mac_key_derivations;
    reg.add(telemetry_.mac_key_derivations);
    if (batch != nullptr) {
      cached = &batch->mac_keys
                    .try_emplace(packet.interval, crypto::HmacKey(*derived))
                    .first->second;
    } else {
      local_key.emplace(common::ByteView(*derived));
      cached = &*local_key;
    }
  }
  const common::Bytes expected_mac =
      crypto::compute_mac(*cached, packet.message, config_.mac_size);
  const common::Bytes expected_micro = micro_mac_of(expected_mac);

  const auto buf_it = buffers_.find(packet.interval);
  bool matched = false;
  if (buf_it != buffers_.end()) {
    // Only the matched record is consumed: other records of the same
    // interval may still authenticate further reveals (multi-message
    // streams); stale rounds are pruned as later intervals arrive.
    matched = buf_it->second.take_matching(expected_micro);
  }
  if (!matched) {
    ++stats_.strong_auth_failures;
    reg.add(telemetry_.strong_auth_failures);
    obs::Tracer::global().record(obs::TraceKind::kAuthFail, local_now,
                                 packet.interval);
    last_verdict_ = tesla::RevealVerdict::kNoRecord;
    return std::nullopt;
  }
  ++stats_.strong_auth_success;
  reg.add(telemetry_.strong_auth_success);
  obs::Tracer::global().record(obs::TraceKind::kAuthSuccess, local_now,
                               packet.interval);
  last_verdict_ = tesla::RevealVerdict::kAccepted;
  resync_.note_healthy();
  return tesla::AuthenticatedMessage{packet.interval, packet.message,
                                     local_now};
}

void DapReceiver::set_buffers(std::size_t m) {
  if (m == 0) {
    throw std::invalid_argument("DapReceiver::set_buffers: m must be >= 1");
  }
  config_.buffers = m;
  effective_buffers_ = m;
  obs::Registry::global().set(telemetry_.effective_buffers,
                              static_cast<double>(m));
}

std::size_t DapReceiver::stored_record_bits() const noexcept {
  std::size_t records = 0;
  for (const auto& [interval, buffer] : buffers_) {
    records += buffer.contents().size();
  }
  return records * (config_.micro_mac_size * 8 + 32);
}

std::size_t DapReceiver::buffered_records(std::uint32_t i) const noexcept {
  const auto it = buffers_.find(i);
  return it == buffers_.end() ? 0 : it->second.contents().size();
}

}  // namespace dap::protocol
