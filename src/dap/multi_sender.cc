#include "dap/multi_sender.h"

#include <stdexcept>

#include "common/contracts.h"

namespace dap::protocol {

MultiSenderReceiver::MultiSenderReceiver(common::Bytes local_secret,
                                         sim::LooseClock clock,
                                         common::Rng rng,
                                         std::size_t buffer_budget)
    : local_secret_(std::move(local_secret)),
      clock_(clock),
      rng_(rng),
      buffer_budget_(buffer_budget) {
  if (local_secret_.empty()) {
    throw std::invalid_argument("MultiSenderReceiver: empty local secret");
  }
  if (buffer_budget_ == 0) {
    throw std::invalid_argument("MultiSenderReceiver: zero buffer budget");
  }
}

std::size_t MultiSenderReceiver::buffers_per_sender() const noexcept {
  if (nodes_.empty()) return buffer_budget_;
  const std::size_t share = buffer_budget_ / nodes_.size();
  return share == 0 ? 1 : share;
}

std::size_t MultiSenderReceiver::buffers_for(wire::NodeId id) const noexcept {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.buffers();
}

void MultiSenderReceiver::rebalance() {
  if (nodes_.empty()) return;
  const std::size_t share = buffer_budget_ / nodes_.size();
  std::size_t remainder = buffer_budget_ % nodes_.size();
  // Hand the remainder out one buffer at a time to the lowest ids (the
  // map iterates in id order), so the whole budget is used; a bare floor
  // share would strand up to n-1 buffers and, at small budgets, starve
  // every sender down to the 1-buffer minimum at once.
  for (auto& [id, receiver] : nodes_) {
    std::size_t buffers = share;
    if (remainder > 0) {
      ++buffers;
      --remainder;
    }
    receiver.set_buffers(buffers == 0 ? 1 : buffers);
  }
}

void MultiSenderReceiver::register_sender(wire::NodeId id,
                                          const DapConfig& config,
                                          common::Bytes commitment) {
  DapConfig adjusted = config;
  adjusted.sender_id = id;
  // The per-sender receiver derives its own local key so records for
  // different senders never collide even with identical MAC inputs.
  common::Bytes per_sender_secret = crypto::prf_bytes(
      crypto::PrfDomain::kReceiverLocal,
      common::concat({common::ByteView(local_secret_),
                      common::ByteView(commitment)}));
  nodes_.erase(id);
  nodes_.emplace(id, DapReceiver(adjusted, std::move(commitment),
                                 std::move(per_sender_secret), clock_,
                                 rng_.fork(id)));
  ++stats_.senders_registered;
  rebalance();
}

bool MultiSenderReceiver::knows_sender(wire::NodeId id) const noexcept {
  return nodes_.find(id) != nodes_.end();
}

void MultiSenderReceiver::receive(const wire::MacAnnounce& packet,
                                  sim::SimTime local_now) {
  // Unknown senders are counted and dropped below — that path is for
  // adversarial traffic; the contract covers construction state only.
  DAP_REQUIRE(buffer_budget_ > 0,
              "MultiSenderReceiver::receive: record budget must be positive");
  const auto it = nodes_.find(packet.sender);
  if (it == nodes_.end()) {
    ++stats_.unknown_sender_packets;
    return;
  }
  it->second.receive(packet, local_now);
}

std::optional<SenderMessage> MultiSenderReceiver::receive(
    const wire::MessageReveal& packet, sim::SimTime local_now) {
  DAP_REQUIRE(buffer_budget_ > 0,
              "MultiSenderReceiver::receive: record budget must be positive");
  const auto it = nodes_.find(packet.sender);
  if (it == nodes_.end()) {
    ++stats_.unknown_sender_packets;
    return std::nullopt;
  }
  auto result = it->second.receive(packet, local_now);
  if (!result) return std::nullopt;
  return SenderMessage{packet.sender, std::move(*result)};
}

const DapStats* MultiSenderReceiver::sender_stats(
    wire::NodeId id) const noexcept {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second.stats();
}

std::size_t MultiSenderReceiver::stored_record_bits() const noexcept {
  std::size_t bits = 0;
  for (const auto& [id, receiver] : nodes_) {
    bits += receiver.stored_record_bits();
  }
  return bits;
}

}  // namespace dap::protocol
