#include "crypto/wots.h"

#include <stdexcept>

#include "common/codec.h"
#include "common/contracts.h"
#include "crypto/hmac.h"

namespace dap::crypto {

namespace {

void check_w(unsigned w_bits) {
  if (w_bits != 1 && w_bits != 2 && w_bits != 4 && w_bits != 8) {
    throw std::invalid_argument("WOTS: winternitz_bits must be 1, 2, 4 or 8");
  }
}

unsigned base_of(unsigned w_bits) noexcept { return 1u << w_bits; }

/// Splits a 32-byte digest into base-2^w digits, then appends the
/// checksum digits. The checksum prevents an attacker from advancing any
/// chain (increasing a digit forces the checksum digit sum down, which
/// would require reversing another chain).
std::vector<unsigned> digits_with_checksum(const Digest& digest,
                                           unsigned w_bits) {
  const unsigned base = base_of(w_bits);
  std::vector<unsigned> digits;
  digits.reserve(kSha256DigestSize * 8 / w_bits + 10);
  for (std::uint8_t byte : digest) {
    for (unsigned shift = 8; shift >= w_bits; shift -= w_bits) {
      digits.push_back((byte >> (shift - w_bits)) & (base - 1));
    }
  }
  const std::size_t message_digits = digits.size();
  std::uint64_t checksum = 0;
  for (unsigned d : digits) checksum += base - 1 - d;
  // Checksum digit count: enough base-`base` digits for the maximum value.
  std::uint64_t max_checksum =
      static_cast<std::uint64_t>(message_digits) * (base - 1);
  std::size_t checksum_digits = 0;
  do {
    ++checksum_digits;
    max_checksum /= base;
  } while (max_checksum > 0);
  for (std::size_t i = 0; i < checksum_digits; ++i) {
    digits.push_back(static_cast<unsigned>(checksum % base));
    checksum /= base;
  }
  return digits;
}

/// One chain link; the chain index and position are mixed in so links of
/// different chains are independent functions.
common::Bytes chain_once(common::ByteView value, std::size_t chain_index,
                         unsigned position) {
  common::Writer w;
  w.u64(static_cast<std::uint64_t>(chain_index));
  w.u32(position);
  w.raw(value);
  const Digest d = sha256(w.data());
  return common::Bytes(d.begin(), d.end());
}

common::Bytes chain_iterate(common::Bytes value, std::size_t chain_index,
                            unsigned from, unsigned steps) {
  for (unsigned s = 0; s < steps; ++s) {
    value = chain_once(value, chain_index, from + s);
  }
  return value;
}

common::Bytes fold_public(const std::vector<common::Bytes>& tops) {
  Sha256 h;
  for (const auto& top : tops) h.update(top);
  const Digest d = h.finalize();
  return common::Bytes(d.begin(), d.end());
}

}  // namespace

std::size_t wots_chain_count(unsigned w_bits) {
  check_w(w_bits);
  // Recompute via a dummy all-zero digest: digit layout is data-independent.
  return digits_with_checksum(Digest{}, w_bits).size();
}

WotsKeyPair::WotsKeyPair(common::ByteView seed, unsigned winternitz_bits)
    : w_bits_(winternitz_bits) {
  check_w(w_bits_);
  if (seed.empty()) throw std::invalid_argument("WOTS: empty seed");
  const std::size_t chains = wots_chain_count(w_bits_);
  const unsigned top = base_of(w_bits_) - 1;
  secret_.reserve(chains);
  std::vector<common::Bytes> tops;
  tops.reserve(chains);
  for (std::size_t i = 0; i < chains; ++i) {
    common::Writer w;
    w.u64(static_cast<std::uint64_t>(i));
    w.raw(seed);
    const Digest sk = hmac_sha256(common::bytes_of("wots-secret"), w.data());
    secret_.emplace_back(sk.begin(), sk.end());
    tops.push_back(chain_iterate(secret_.back(), i, 0, top));
  }
  public_key_ = fold_public(tops);
}

WotsSignature WotsKeyPair::sign(common::ByteView message) {
  const Digest digest = sha256(message);
  const common::Bytes digest_bytes(digest.begin(), digest.end());
  if (!signed_digest_.empty() &&
      !common::constant_time_equal(signed_digest_, digest_bytes)) {
    throw std::logic_error("WOTS: key already used for a different message");
  }
  signed_digest_ = digest_bytes;
  const auto digits = digits_with_checksum(digest, w_bits_);
  WotsSignature sig;
  sig.chains.reserve(digits.size());
  for (std::size_t i = 0; i < digits.size(); ++i) {
    sig.chains.push_back(
        chain_iterate(secret_[i], i, 0, digits[i]));
  }
  DAP_ENSURE(sig.chains.size() == digits.size(),
             "WOTS::sign: one chain value per message/checksum digit");
  return sig;
}

common::Bytes wots_recover_public_key(common::ByteView message,
                                      const WotsSignature& sig,
                                      unsigned winternitz_bits) {
  if (winternitz_bits != 1 && winternitz_bits != 2 && winternitz_bits != 4 &&
      winternitz_bits != 8) {
    return {};
  }
  const Digest digest = sha256(message);
  const auto digits = digits_with_checksum(digest, winternitz_bits);
  if (sig.chains.size() != digits.size()) return {};
  const unsigned top = base_of(winternitz_bits) - 1;
  std::vector<common::Bytes> tops;
  tops.reserve(digits.size());
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (sig.chains[i].size() != kSha256DigestSize) return {};
    tops.push_back(
        chain_iterate(sig.chains[i], i, digits[i], top - digits[i]));
  }
  return fold_public(tops);
}

bool wots_verify(common::ByteView public_key, common::ByteView message,
                 const WotsSignature& sig, unsigned winternitz_bits) noexcept {
  const common::Bytes recovered =
      wots_recover_public_key(message, sig, winternitz_bits);
  if (recovered.empty()) return false;
  return common::constant_time_equal(recovered, public_key);
}

}  // namespace dap::crypto
