#pragma once
// HMAC-SHA-256 (RFC 2104 / FIPS 198-1) built on the local SHA-256.
//
// HMAC is the MAC primitive of every protocol here: TESLA's per-packet
// MAC_{K_i}(M), DAP's receiver-side re-MAC MAC_{K_recv}(MAC_i), and the
// CDM MACs of multi-level μTESLA.

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace dap::crypto {

/// Precomputed HMAC key: caches the ipad/opad midstates so each MAC under
/// a reused key costs 2 SHA-256 compressions (short messages) instead of
/// the 4 a from-scratch `hmac_sha256` pays. Intended for long-lived keys —
/// `K_recv`, per-interval MAC keys derived once per drain, and the PRF
/// domain labels (crypto/prf.h caches one per domain). Trivially copyable;
/// fine to keep in maps keyed by interval.
///
/// Each MAC it computes still counts toward `crypto.hmac_calls`, and
/// additionally toward `crypto.hmac_midstate_hits`, so the pad-recompute
/// savings are observable in telemetry.
class HmacKey {
 public:
  HmacKey() noexcept = default;
  explicit HmacKey(common::ByteView key) noexcept;

  /// Full 32-byte tag; identical to `hmac_sha256(key, message)`.
  [[nodiscard]] Digest mac(common::ByteView message) const noexcept;

  /// Same tag as a Bytes buffer.
  [[nodiscard]] common::Bytes mac_bytes(common::ByteView message) const;

  /// Verifies in constant time.
  [[nodiscard]] bool verify(common::ByteView message,
                            common::ByteView tag) const noexcept;

  /// Midstates after absorbing the ipad/opad block (bytes == 64). The
  /// batched backend (crypto/sha256_batch.h) seeds its lanes from these.
  [[nodiscard]] const Sha256Midstate& inner_midstate() const noexcept {
    return inner_;
  }
  [[nodiscard]] const Sha256Midstate& outer_midstate() const noexcept {
    return outer_;
  }

 private:
  Sha256Midstate inner_{};
  Sha256Midstate outer_{};
};

/// Full 32-byte HMAC-SHA-256 tag.
Digest hmac_sha256(common::ByteView key, common::ByteView message) noexcept;

/// Same tag as a Bytes buffer.
common::Bytes hmac_sha256_bytes(common::ByteView key,
                                common::ByteView message);

/// Verifies in constant time.
bool hmac_verify(common::ByteView key, common::ByteView message,
                 common::ByteView tag) noexcept;

}  // namespace dap::crypto
