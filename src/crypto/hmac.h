#pragma once
// HMAC-SHA-256 (RFC 2104 / FIPS 198-1) built on the local SHA-256.
//
// HMAC is the MAC primitive of every protocol here: TESLA's per-packet
// MAC_{K_i}(M), DAP's receiver-side re-MAC MAC_{K_recv}(MAC_i), and the
// CDM MACs of multi-level μTESLA.

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace dap::crypto {

/// Full 32-byte HMAC-SHA-256 tag.
Digest hmac_sha256(common::ByteView key, common::ByteView message) noexcept;

/// Same tag as a Bytes buffer.
common::Bytes hmac_sha256_bytes(common::ByteView key,
                                common::ByteView message);

/// Verifies in constant time.
bool hmac_verify(common::ByteView key, common::ByteView message,
                 common::ByteView tag) noexcept;

}  // namespace dap::crypto
