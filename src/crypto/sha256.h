#pragma once
// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the single cryptographic hash underlying every primitive in the
// library: HMAC, one-way key chains, the pseudorandom function H used by
// EDRP, and the WOTS one-time signature. The streaming interface supports
// incremental input; `sha256()` is the one-shot convenience.

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace dap::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Digest = std::array<std::uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256() noexcept;

  /// Absorbs more input; may be called any number of times.
  void update(common::ByteView data) noexcept;

  /// Finalizes and returns the digest. The object must not be reused
  /// afterwards except via reset().
  Digest finalize() noexcept;

  /// Returns the object to its freshly-constructed state.
  void reset() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot SHA-256 of `data`.
Digest sha256(common::ByteView data) noexcept;

/// One-shot SHA-256 returned as a Bytes buffer (for APIs that splice it).
common::Bytes sha256_bytes(common::ByteView data);

}  // namespace dap::crypto
