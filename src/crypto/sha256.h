#pragma once
// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the single cryptographic hash underlying every primitive in the
// library: HMAC, one-way key chains, the pseudorandom function H used by
// EDRP, and the WOTS one-time signature. The streaming interface supports
// incremental input; `sha256()` is the one-shot convenience.

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace dap::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

using Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Compression-function state captured after absorbing a whole number of
/// 64-byte blocks. A midstate is resumable: restoring it and absorbing
/// the rest of the stream yields the same digest as hashing the whole
/// stream from scratch. HMAC keys cache the ipad/opad midstates so each
/// MAC costs 2 compressions instead of 4 (see crypto/hmac.h), and the
/// batched backend (crypto/sha256_batch.h) seeds its lanes from them.
struct Sha256Midstate {
  std::array<std::uint32_t, 8> state{};
  std::uint64_t bytes = 0;  // absorbed so far; always a multiple of 64
};

/// The FIPS 180-4 initial chaining value (H^(0)) as a midstate.
[[nodiscard]] Sha256Midstate sha256_initial_midstate() noexcept;

/// One application of the SHA-256 compression function: folds a 64-byte
/// block into `state` in place. This scalar routine is the reference
/// oracle every batched backend is tested against bit-for-bit.
void sha256_compress(std::uint32_t state[8],
                     const std::uint8_t* block) noexcept;

class Sha256 {
 public:
  Sha256() noexcept;

  /// Absorbs more input; may be called any number of times.
  void update(common::ByteView data) noexcept;

  /// Finalizes and returns the digest. The object must not be reused
  /// afterwards except via reset().
  Digest finalize() noexcept;

  /// Returns the object to its freshly-constructed state.
  void reset() noexcept;

  /// Captures the current compression state. Only valid on block
  /// boundaries (no partial input buffered) — the buffered tail would be
  /// lost. Checked by contract in the implementation.
  [[nodiscard]] Sha256Midstate midstate() const noexcept;

  /// Restores a previously captured midstate: the object behaves as if
  /// it had just absorbed `ms.bytes` bytes of the original stream.
  void restore(const Sha256Midstate& ms) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot SHA-256 of `data`.
Digest sha256(common::ByteView data) noexcept;

/// One-shot SHA-256 returned as a Bytes buffer (for APIs that splice it).
common::Bytes sha256_bytes(common::ByteView data);

}  // namespace dap::crypto
