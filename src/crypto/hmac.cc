#include "crypto/hmac.h"

#include <array>

#include "obs/scoped_timer.h"

namespace dap::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;

// Per-packet verification cost lives here; handles are re-resolved per
// effective registry so shard overrides (parallel runs) stay valid.
struct HmacTelemetry {
  obs::CounterHandle calls;
  obs::HistogramHandle latency;
};

const HmacTelemetry& hmac_telemetry() {
  thread_local obs::PerRegistryCache<HmacTelemetry> cache;
  return cache.get([](obs::Registry& reg) {
    return HmacTelemetry{reg.counter("crypto.hmac_calls"),
                        reg.histogram("crypto.hmac_us")};
  });
}
}  // namespace

Digest hmac_sha256(common::ByteView key, common::ByteView message) noexcept {
  const HmacTelemetry& telemetry = hmac_telemetry();
  obs::Registry::global().add(telemetry.calls);
  const obs::ScopedTimer timer(telemetry.latency);
  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const Digest hashed = sha256(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<std::uint8_t, kBlockSize> ipad;
  std::array<std::uint8_t, kBlockSize> opad;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(common::ByteView(ipad.data(), ipad.size()));
  inner.update(message);
  const Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(common::ByteView(opad.data(), opad.size()));
  outer.update(common::ByteView(inner_digest.data(), inner_digest.size()));
  return outer.finalize();
}

common::Bytes hmac_sha256_bytes(common::ByteView key,
                                common::ByteView message) {
  const Digest d = hmac_sha256(key, message);
  return common::Bytes(d.begin(), d.end());
}

bool hmac_verify(common::ByteView key, common::ByteView message,
                 common::ByteView tag) noexcept {
  const Digest expect = hmac_sha256(key, message);
  return common::constant_time_equal(
      common::ByteView(expect.data(), expect.size()), tag);
}

}  // namespace dap::crypto
