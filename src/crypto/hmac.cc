#include "crypto/hmac.h"

#include <array>

#include "obs/scoped_timer.h"

namespace dap::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;

// Per-packet verification cost lives here; handles are re-resolved per
// effective registry so shard overrides (parallel runs) stay valid.
struct HmacTelemetry {
  obs::CounterHandle calls;
  obs::CounterHandle midstate_hits;
  obs::HistogramHandle latency;
};

const HmacTelemetry& hmac_telemetry() {
  thread_local obs::PerRegistryCache<HmacTelemetry> cache;
  return cache.get([](obs::Registry& reg) {
    return HmacTelemetry{reg.counter("crypto.hmac_calls"),
                         reg.counter("crypto.hmac_midstate_hits"),
                         reg.histogram("crypto.hmac_us")};
  });
}

// Normalizes `key` into one 64-byte block (hash-then-pad for long keys).
std::array<std::uint8_t, kBlockSize> normalize_key(common::ByteView key) {
  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const Digest hashed = sha256(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }
  return key_block;
}

// Midstate after absorbing (key_block ^ pad) — one compression, done
// once per HmacKey instead of once per MAC.
Sha256Midstate pad_midstate(
    const std::array<std::uint8_t, kBlockSize>& key_block,
    std::uint8_t pad) noexcept {
  std::array<std::uint8_t, kBlockSize> block;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    block[i] = static_cast<std::uint8_t>(key_block[i] ^ pad);
  }
  Sha256Midstate ms = sha256_initial_midstate();
  sha256_compress(ms.state.data(), block.data());
  ms.bytes = kSha256BlockSize;
  return ms;
}
}  // namespace

HmacKey::HmacKey(common::ByteView key) noexcept {
  const std::array<std::uint8_t, kBlockSize> key_block = normalize_key(key);
  inner_ = pad_midstate(key_block, 0x36);
  outer_ = pad_midstate(key_block, 0x5c);
}

Digest HmacKey::mac(common::ByteView message) const noexcept {
  const HmacTelemetry& telemetry = hmac_telemetry();
  obs::Registry::global().add(telemetry.calls);
  obs::Registry::global().add(telemetry.midstate_hits);
  const obs::ScopedTimer timer(telemetry.latency);
  Sha256 h;
  h.restore(inner_);
  h.update(message);
  const Digest inner_digest = h.finalize();
  h.restore(outer_);
  h.update(common::ByteView(inner_digest.data(), inner_digest.size()));
  return h.finalize();
}

common::Bytes HmacKey::mac_bytes(common::ByteView message) const {
  const Digest d = mac(message);
  return common::Bytes(d.begin(), d.end());
}

bool HmacKey::verify(common::ByteView message,
                     common::ByteView tag) const noexcept {
  const Digest expect = mac(message);
  return common::constant_time_equal(
      common::ByteView(expect.data(), expect.size()), tag);
}

Digest hmac_sha256(common::ByteView key, common::ByteView message) noexcept {
  const HmacTelemetry& telemetry = hmac_telemetry();
  obs::Registry::global().add(telemetry.calls);
  const obs::ScopedTimer timer(telemetry.latency);
  const std::array<std::uint8_t, kBlockSize> key_block = normalize_key(key);

  std::array<std::uint8_t, kBlockSize> ipad;
  std::array<std::uint8_t, kBlockSize> opad;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(common::ByteView(ipad.data(), ipad.size()));
  inner.update(message);
  const Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(common::ByteView(opad.data(), opad.size()));
  outer.update(common::ByteView(inner_digest.data(), inner_digest.size()));
  return outer.finalize();
}

common::Bytes hmac_sha256_bytes(common::ByteView key,
                                common::ByteView message) {
  const Digest d = hmac_sha256(key, message);
  return common::Bytes(d.begin(), d.end());
}

bool hmac_verify(common::ByteView key, common::ByteView message,
                 common::ByteView tag) noexcept {
  const Digest expect = hmac_sha256(key, message);
  return common::constant_time_equal(
      common::ByteView(expect.data(), expect.size()), tag);
}

}  // namespace dap::crypto
