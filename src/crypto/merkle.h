#pragma once
// Merkle-tree many-time signatures (XMSS-lite) over WOTS.
//
// A WOTS key signs exactly one message; real deployments (TESLA/TESLA++
// bootstrap re-broadcasts, periodic signed packets) need many. The
// classic fix is a Merkle tree: generate 2^h WOTS key pairs, hash their
// public keys into a tree, and publish only the root. Each signature is
// (leaf index, WOTS signature, authentication path); verifiers rebuild
// the leaf from the WOTS signature and hash up the path to the root.
// This keeps the whole system hash-based — the repo's stand-in for the
// digital signatures the papers assume (see DESIGN.md substitutions).

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "crypto/wots.h"

namespace dap::crypto {

struct MerkleSignature {
  std::uint32_t leaf_index = 0;
  WotsSignature wots;
  std::vector<common::Bytes> auth_path;  // sibling hashes, leaf -> root
};

class MerkleSigner {
 public:
  /// 2^height one-time keys derived from `seed`. height in [1, 16].
  MerkleSigner(common::ByteView seed, unsigned height,
               unsigned winternitz_bits = 4);

  /// Signs with the next unused leaf; throws std::runtime_error once all
  /// 2^height leaves are spent.
  MerkleSignature sign(common::ByteView message);

  [[nodiscard]] const common::Bytes& root() const noexcept { return root_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return leaves_.size();
  }
  [[nodiscard]] std::size_t signatures_used() const noexcept {
    return next_leaf_;
  }
  [[nodiscard]] unsigned height() const noexcept { return height_; }

 private:
  unsigned height_;
  unsigned w_bits_;
  std::vector<WotsKeyPair> keys_;
  std::vector<std::vector<common::Bytes>> levels_;  // levels_[0] = leaves
  std::vector<common::Bytes> leaves_;               // alias of levels_[0]
  common::Bytes root_;
  std::size_t next_leaf_ = 0;
};

/// Verifies a Merkle signature against the published root.
bool merkle_verify(common::ByteView root, common::ByteView message,
                   const MerkleSignature& sig, unsigned height,
                   unsigned winternitz_bits = 4) noexcept;

/// Hash of a WOTS public key used as the tree leaf (exposed for tests).
common::Bytes merkle_leaf(common::ByteView wots_public_key);

}  // namespace dap::crypto
