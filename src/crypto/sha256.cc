#include "crypto/sha256.h"

#include <bit>
#include <cstring>

#include "common/contracts.h"

namespace dap::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

Sha256::Sha256() noexcept { reset(); }

void Sha256::reset() noexcept {
  state_ = kInitialState;
  buffered_ = 0;
  total_bytes_ = 0;
}

Sha256Midstate sha256_initial_midstate() noexcept {
  return Sha256Midstate{kInitialState, 0};
}

Sha256Midstate Sha256::midstate() const noexcept {
  DAP_REQUIRE(buffered_ == 0,
              "Sha256::midstate: only valid on a block boundary");
  return Sha256Midstate{state_, total_bytes_};
}

void Sha256::restore(const Sha256Midstate& ms) noexcept {
  state_ = ms.state;
  buffered_ = 0;
  total_bytes_ = ms.bytes;
}

void sha256_compress(std::uint32_t state[8],
                     const std::uint8_t* block) noexcept {
  std::array<std::uint32_t, 64> w;
  for (int i = 0; i < 16; ++i) {
    w[static_cast<std::size_t>(i)] = load_be32(block + 4 * i);
  }
  for (std::size_t i = 16; i < 64; ++i) {
    const std::uint32_t s0 = std::rotr(w[i - 15], 7) ^ std::rotr(w[i - 15], 18) ^
                             (w[i - 15] >> 3);
    const std::uint32_t s1 = std::rotr(w[i - 2], 17) ^ std::rotr(w[i - 2], 19) ^
                             (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint32_t s1 =
        std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 =
        std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

void Sha256::process_block(const std::uint8_t* block) noexcept {
  sha256_compress(state_.data(), block);
}

void Sha256::update(common::ByteView data) noexcept {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t need = 64 - buffered_;
    const std::size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Digest Sha256::finalize() noexcept {
  const std::uint64_t bit_length = total_bytes_ * 8;
  // Padding: 0x80, zeros, then 64-bit big-endian bit length.
  const std::uint8_t pad_byte = 0x80;
  update(common::ByteView(&pad_byte, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) {
    update(common::ByteView(&zero, 1));
  }
  std::array<std::uint8_t, 8> len;
  for (int i = 0; i < 8; ++i) {
    len[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(common::ByteView(len.data(), len.size()));

  Digest out;
  for (std::size_t i = 0; i < 8; ++i) {
    store_be32(out.data() + 4 * i, state_[i]);
  }
  return out;
}

Digest sha256(common::ByteView data) noexcept {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

common::Bytes sha256_bytes(common::ByteView data) {
  const Digest d = sha256(data);
  return common::Bytes(d.begin(), d.end());
}

}  // namespace dap::crypto
