// AVX2 8-lane SHA-256 compression kernel.
//
// Compiled with -mavx2 (per-file, behind the DAP_SIMD build option) and
// kept in its own translation unit so nothing else in the library is
// built with AVX2 code generation — the dispatcher in sha256_batch.cc
// only calls in here after __builtin_cpu_supports("avx2") says the host
// can run it. One 32-bit AVX2 lane carries one independent message
// schedule; all eight advance one 64-byte block in lockstep. No header
// of its own: the single entry point is declared by the dispatcher.

#include <cstdint>

#if defined(DAP_CRYPTO_HAVE_AVX2)

#include <immintrin.h>

namespace dap::crypto::detail {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

inline __m256i rotr32x8(__m256i x, int n) noexcept {
  return _mm256_or_si256(_mm256_srli_epi32(x, n),
                         _mm256_slli_epi32(x, 32 - n));
}

}  // namespace

// Contract shared with the other kernels: `states` is lane-major
// (states[lane * 8 + word]); each of the 8 blocks advances one
// compression.
void sha256_compress_x8(std::uint32_t* states,
                        const std::uint8_t* const* blocks) noexcept {
  __m256i w[64];
  for (int t = 0; t < 16; ++t) {
    w[t] = _mm256_set_epi32(
        static_cast<int>(load_be32(blocks[7] + 4 * t)),
        static_cast<int>(load_be32(blocks[6] + 4 * t)),
        static_cast<int>(load_be32(blocks[5] + 4 * t)),
        static_cast<int>(load_be32(blocks[4] + 4 * t)),
        static_cast<int>(load_be32(blocks[3] + 4 * t)),
        static_cast<int>(load_be32(blocks[2] + 4 * t)),
        static_cast<int>(load_be32(blocks[1] + 4 * t)),
        static_cast<int>(load_be32(blocks[0] + 4 * t)));
  }
  for (int t = 16; t < 64; ++t) {
    const __m256i x15 = w[t - 15];
    const __m256i x2 = w[t - 2];
    const __m256i s0 = _mm256_xor_si256(
        _mm256_xor_si256(rotr32x8(x15, 7), rotr32x8(x15, 18)),
        _mm256_srli_epi32(x15, 3));
    const __m256i s1 = _mm256_xor_si256(
        _mm256_xor_si256(rotr32x8(x2, 17), rotr32x8(x2, 19)),
        _mm256_srli_epi32(x2, 10));
    w[t] = _mm256_add_epi32(_mm256_add_epi32(w[t - 16], s0),
                            _mm256_add_epi32(w[t - 7], s1));
  }

  __m256i s[8];
  for (int v = 0; v < 8; ++v) {
    s[v] = _mm256_set_epi32(
        static_cast<int>(states[7 * 8 + v]),
        static_cast<int>(states[6 * 8 + v]),
        static_cast<int>(states[5 * 8 + v]),
        static_cast<int>(states[4 * 8 + v]),
        static_cast<int>(states[3 * 8 + v]),
        static_cast<int>(states[2 * 8 + v]),
        static_cast<int>(states[1 * 8 + v]),
        static_cast<int>(states[0 * 8 + v]));
  }
  __m256i a = s[0], b = s[1], c = s[2], d = s[3];
  __m256i e = s[4], f = s[5], g = s[6], h = s[7];

  for (int t = 0; t < 64; ++t) {
    const __m256i big_s1 = _mm256_xor_si256(
        _mm256_xor_si256(rotr32x8(e, 6), rotr32x8(e, 11)), rotr32x8(e, 25));
    const __m256i ch = _mm256_xor_si256(_mm256_and_si256(e, f),
                                        _mm256_andnot_si256(e, g));
    const __m256i temp1 = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(h, big_s1),
                         _mm256_add_epi32(ch, w[t])),
        _mm256_set1_epi32(static_cast<int>(kK[t])));
    const __m256i big_s0 = _mm256_xor_si256(
        _mm256_xor_si256(rotr32x8(a, 2), rotr32x8(a, 13)), rotr32x8(a, 22));
    const __m256i maj = _mm256_xor_si256(
        _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
        _mm256_and_si256(b, c));
    const __m256i temp2 = _mm256_add_epi32(big_s0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm256_add_epi32(d, temp1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi32(temp1, temp2);
  }

  s[0] = _mm256_add_epi32(s[0], a);
  s[1] = _mm256_add_epi32(s[1], b);
  s[2] = _mm256_add_epi32(s[2], c);
  s[3] = _mm256_add_epi32(s[3], d);
  s[4] = _mm256_add_epi32(s[4], e);
  s[5] = _mm256_add_epi32(s[5], f);
  s[6] = _mm256_add_epi32(s[6], g);
  s[7] = _mm256_add_epi32(s[7], h);

  alignas(32) std::uint32_t tmp[8];
  for (int v = 0; v < 8; ++v) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), s[v]);
    for (int l = 0; l < 8; ++l) {
      states[static_cast<std::size_t>(l) * 8 + static_cast<std::size_t>(v)] =
          tmp[l];
    }
  }
}

}  // namespace dap::crypto::detail

#else  // !DAP_CRYPTO_HAVE_AVX2

// Keep the translation unit non-empty when the build does not enable
// the AVX2 path (DAP_SIMD=OFF): the dispatcher never references the
// kernel in that configuration.
namespace dap::crypto::detail {
void sha256_batch_avx2_unused() noexcept {}
}  // namespace dap::crypto::detail

#endif  // DAP_CRYPTO_HAVE_AVX2
