#pragma once
// Protocol-level MAC helpers with the paper's wire sizes.
//
// Fig. 4 of the paper fixes the sizes DAP puts on the wire and in memory:
//   MAC_i   = MAC_{K_i}(M_i)            : 80 bits
//   μMAC_i  = MAC_{K_recv}(MAC_i)       : 24 bits (receiver-local re-MAC)
//   index i                              : 32 bits
//   message M                            : 200 bits in the evaluation
// Storing (μMAC, i) costs 56 bits against 280 for (M, MAC), the 80%
// memory saving DAP claims. All tags are truncated HMAC-SHA-256.

#include <cstdint>

#include "common/bytes.h"
#include "crypto/hmac.h"

namespace dap::crypto {

inline constexpr std::size_t kMacBits = 80;
inline constexpr std::size_t kMacSize = kMacBits / 8;        // 10 bytes
inline constexpr std::size_t kMicroMacBits = 24;
inline constexpr std::size_t kMicroMacSize = kMicroMacBits / 8;  // 3 bytes
inline constexpr std::size_t kIndexBits = 32;
inline constexpr std::size_t kMessageBitsEval = 200;

/// MAC_{key}(message) truncated to `size` bytes (default: the paper's
/// 80-bit packet MAC). Throws std::invalid_argument for size 0 or > 32.
common::Bytes compute_mac(common::ByteView key, common::ByteView message,
                          std::size_t size = kMacSize);

/// Receiver-side re-MAC: μMAC = MAC_{recv_key}(mac), truncated to `size`
/// bytes (default: the paper's 24-bit μMAC).
common::Bytes micro_mac(common::ByteView recv_key, common::ByteView mac,
                        std::size_t size = kMicroMacSize);

/// Constant-time verification of a (possibly truncated) tag.
bool verify_mac(common::ByteView key, common::ByteView message,
                common::ByteView tag);

/// Precomputed-key overloads: same tags, but the ipad/opad midstates are
/// paid once per HmacKey instead of once per call. Use for keys applied
/// to many messages (K_recv, per-interval MAC keys during a drain).
common::Bytes compute_mac(const HmacKey& key, common::ByteView message,
                          std::size_t size = kMacSize);
common::Bytes micro_mac(const HmacKey& recv_key, common::ByteView mac,
                        std::size_t size = kMicroMacSize);
bool verify_mac(const HmacKey& key, common::ByteView message,
                common::ByteView tag);

/// Bits of storage DAP uses per buffered record (μMAC + index).
[[nodiscard]] constexpr std::size_t dap_record_bits(
    std::size_t micro_mac_bits = kMicroMacBits,
    std::size_t index_bits = kIndexBits) noexcept {
  return micro_mac_bits + index_bits;
}

/// Bits of storage a store-message-and-MAC scheme (TESLA/TESLA++ style
/// with the paper's accounting) uses per buffered record.
[[nodiscard]] constexpr std::size_t full_record_bits(
    std::size_t message_bits = kMessageBitsEval,
    std::size_t mac_bits = kMacBits) noexcept {
  return message_bits + mac_bits;
}

}  // namespace dap::crypto
