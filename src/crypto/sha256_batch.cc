#include "crypto/sha256_batch.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "common/contracts.h"
#include "obs/registry.h"

#if defined(__SSE2__) || defined(__x86_64__)
#define DAP_CRYPTO_HAVE_SSE2 1
#include <emmintrin.h>
#endif

namespace dap::crypto {

namespace detail {
#if defined(DAP_CRYPTO_HAVE_AVX2)
// Defined in sha256_batch_avx2.cc, compiled with -mavx2 behind the
// DAP_SIMD build option. Only ever called after a runtime CPUID check.
void sha256_compress_x8(std::uint32_t* states,
                        const std::uint8_t* const* blocks) noexcept;
#endif
}  // namespace detail

namespace {

struct BatchTelemetry {
  obs::CounterHandle calls;
  obs::CounterHandle messages;
  obs::CounterHandle blocks;
  obs::CounterHandle idle_blocks;
  obs::GaugeHandle occupancy;
  obs::CounterHandle hmac_calls;
  obs::CounterHandle hmac_midstate_hits;
  obs::CounterHandle prf_calls;
  obs::CounterHandle chain_walk_steps;
};

// Re-resolved per effective registry so shard overrides (parallel runs)
// never see handles minted against a different registry.
const BatchTelemetry& batch_telemetry() {
  thread_local obs::PerRegistryCache<BatchTelemetry> cache;
  return cache.get([](obs::Registry& reg) {
    return BatchTelemetry{reg.counter("crypto.batch.calls"),
                          reg.counter("crypto.batch.messages"),
                          reg.counter("crypto.batch.blocks"),
                          reg.counter("crypto.batch.idle_lane_blocks"),
                          reg.gauge("crypto.batch.lane_occupancy_pct"),
                          reg.counter("crypto.hmac_calls"),
                          reg.counter("crypto.hmac_midstate_hits"),
                          reg.counter("crypto.prf_calls"),
                          reg.counter("crypto.chain_walk_steps")};
  });
}

// Test/debug override; -1 means "auto". Process-wide by design: the
// backend is a pure performance knob (outputs are backend-invariant).
// lint: allow(global-state): runtime backend override must be visible to
// every thread; outputs are bitwise identical regardless of its value.
std::atomic<int> g_forced_backend{-1};

std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

// ---- lane kernels --------------------------------------------------------
//
// All kernels share one contract: `states` is lane-major
// (states[lane * 8 + word]), `blocks[lane]` points at that lane's 64-byte
// block, and every lane advances exactly one compression.

void compress_lanes_scalar(std::uint32_t* states,
                           const std::uint8_t* const* blocks,
                           std::size_t lanes) noexcept {
  for (std::size_t l = 0; l < lanes; ++l) {
    sha256_compress(states + 8 * l, blocks[l]);
  }
}

#if defined(DAP_CRYPTO_HAVE_SSE2)

inline __m128i rotr32x4(__m128i x, int n) noexcept {
  return _mm_or_si128(_mm_srli_epi32(x, n), _mm_slli_epi32(x, 32 - n));
}

// 4 independent message schedules in lockstep, one per 32-bit SSE2 lane.
void compress_lanes_sse2_x4(std::uint32_t* states,
                            const std::uint8_t* const* blocks) noexcept {
  __m128i w[64];
  for (int t = 0; t < 16; ++t) {
    w[t] = _mm_set_epi32(
        static_cast<int>(load_be32(blocks[3] + 4 * t)),
        static_cast<int>(load_be32(blocks[2] + 4 * t)),
        static_cast<int>(load_be32(blocks[1] + 4 * t)),
        static_cast<int>(load_be32(blocks[0] + 4 * t)));
  }
  for (int t = 16; t < 64; ++t) {
    const __m128i x15 = w[t - 15];
    const __m128i x2 = w[t - 2];
    const __m128i s0 = _mm_xor_si128(
        _mm_xor_si128(rotr32x4(x15, 7), rotr32x4(x15, 18)),
        _mm_srli_epi32(x15, 3));
    const __m128i s1 = _mm_xor_si128(
        _mm_xor_si128(rotr32x4(x2, 17), rotr32x4(x2, 19)),
        _mm_srli_epi32(x2, 10));
    w[t] = _mm_add_epi32(_mm_add_epi32(w[t - 16], s0),
                         _mm_add_epi32(w[t - 7], s1));
  }

  __m128i s[8];
  for (int v = 0; v < 8; ++v) {
    s[v] = _mm_set_epi32(static_cast<int>(states[3 * 8 + v]),
                         static_cast<int>(states[2 * 8 + v]),
                         static_cast<int>(states[1 * 8 + v]),
                         static_cast<int>(states[0 * 8 + v]));
  }
  __m128i a = s[0], b = s[1], c = s[2], d = s[3];
  __m128i e = s[4], f = s[5], g = s[6], h = s[7];

  for (int t = 0; t < 64; ++t) {
    const __m128i big_s1 = _mm_xor_si128(
        _mm_xor_si128(rotr32x4(e, 6), rotr32x4(e, 11)), rotr32x4(e, 25));
    const __m128i ch =
        _mm_xor_si128(_mm_and_si128(e, f), _mm_andnot_si128(e, g));
    const __m128i temp1 = _mm_add_epi32(
        _mm_add_epi32(_mm_add_epi32(h, big_s1), _mm_add_epi32(ch, w[t])),
        _mm_set1_epi32(static_cast<int>(kK[static_cast<std::size_t>(t)])));
    const __m128i big_s0 = _mm_xor_si128(
        _mm_xor_si128(rotr32x4(a, 2), rotr32x4(a, 13)), rotr32x4(a, 22));
    const __m128i maj = _mm_xor_si128(
        _mm_xor_si128(_mm_and_si128(a, b), _mm_and_si128(a, c)),
        _mm_and_si128(b, c));
    const __m128i temp2 = _mm_add_epi32(big_s0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm_add_epi32(d, temp1);
    d = c;
    c = b;
    b = a;
    a = _mm_add_epi32(temp1, temp2);
  }

  s[0] = _mm_add_epi32(s[0], a);
  s[1] = _mm_add_epi32(s[1], b);
  s[2] = _mm_add_epi32(s[2], c);
  s[3] = _mm_add_epi32(s[3], d);
  s[4] = _mm_add_epi32(s[4], e);
  s[5] = _mm_add_epi32(s[5], f);
  s[6] = _mm_add_epi32(s[6], g);
  s[7] = _mm_add_epi32(s[7], h);

  alignas(16) std::uint32_t tmp[4];
  for (int v = 0; v < 8; ++v) {
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), s[v]);
    states[0 * 8 + v] = tmp[0];
    states[1 * 8 + v] = tmp[1];
    states[2 * 8 + v] = tmp[2];
    states[3 * 8 + v] = tmp[3];
  }
}

#endif  // DAP_CRYPTO_HAVE_SSE2

// One lockstep compression across `lanes` lanes with the given backend.
void compress_lanes(Sha256Backend backend, std::uint32_t* states,
                    const std::uint8_t* const* blocks,
                    std::size_t lanes) noexcept {
  switch (backend) {
    case Sha256Backend::kAvx2:
#if defined(DAP_CRYPTO_HAVE_AVX2)
      if (lanes == 8) {
        detail::sha256_compress_x8(states, blocks);
        return;
      }
#endif
      break;
    case Sha256Backend::kSse2:
#if defined(DAP_CRYPTO_HAVE_SSE2)
      if (lanes == 4) {
        compress_lanes_sse2_x4(states, blocks);
        return;
      }
#endif
      break;
    case Sha256Backend::kScalar:
      break;
  }
  compress_lanes_scalar(states, blocks, lanes);
}

// ---- backend selection ---------------------------------------------------

Sha256Backend clamp_to_supported(Sha256Backend want) noexcept {
  const Sha256Backend best = best_supported_sha256_backend();
  return static_cast<std::uint8_t>(want) <= static_cast<std::uint8_t>(best)
             ? want
             : best;
}

Sha256Backend detect_backend() noexcept {
  if (const char* env = std::getenv("DAP_CRYPTO_BACKEND")) {
    const std::string_view v(env);
    if (v == "scalar") return Sha256Backend::kScalar;
    if (v == "sse2") return clamp_to_supported(Sha256Backend::kSse2);
    if (v == "avx2") return clamp_to_supported(Sha256Backend::kAvx2);
    // Unknown values fall through to auto-detection.
  }
  return best_supported_sha256_backend();
}

// ---- batched hashing core ------------------------------------------------

constexpr std::size_t kMaxLanes = 8;

// Per-message block layout: `full_blocks` 64-byte blocks read straight
// from the message, then 1–2 scratch blocks holding the padded tail.
// `seed_bytes` (already-absorbed prefix, e.g. the HMAC pad block) only
// affects the encoded bit length, exactly like Sha256::finalize().
struct LanePlan {
  std::size_t full_blocks = 0;
  std::size_t total_blocks = 0;
  std::array<std::uint8_t, 2 * kSha256BlockSize> scratch{};
};

LanePlan make_plan(common::ByteView msg, std::uint64_t seed_bytes) {
  LanePlan p;
  const std::size_t len = msg.size();
  p.full_blocks = len / kSha256BlockSize;
  const std::size_t tail = len % kSha256BlockSize;
  const std::size_t scratch_blocks = tail <= 55 ? 1 : 2;
  p.total_blocks = p.full_blocks + scratch_blocks;
  if (tail > 0) {
    std::memcpy(p.scratch.data(),
                msg.data() + kSha256BlockSize * p.full_blocks, tail);
  }
  p.scratch[tail] = 0x80;
  const std::uint64_t bits = (seed_bytes + len) * 8;
  std::uint8_t* end =
      p.scratch.data() + scratch_blocks * kSha256BlockSize - 8;
  for (int i = 0; i < 8; ++i) {
    end[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  return p;
}

// Resumes each lane from its midstate, absorbs msgs[i] plus padding, and
// writes the final digests. The grouping keeps lanes lockstep: messages
// are ordered by total block count, so every lane in a chunk compresses
// the same number of blocks; unoccupied lanes replicate the chunk's
// first message (their work is counted as idle, their states discarded).
void hash_resume_batch(std::span<const Sha256Midstate* const> seeds,
                       std::span<const common::ByteView> msgs,
                       std::span<Digest> out) {
  const std::size_t n = msgs.size();
  DAP_REQUIRE(seeds.size() == n && out.size() >= n,
              "hash_resume_batch: seeds/out must cover every message");
  if (n == 0) return;

  const Sha256Backend backend = active_sha256_backend();
  const std::size_t lanes = backend_lanes(backend);

  std::vector<LanePlan> plans;
  plans.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    plans.push_back(make_plan(msgs[i], seeds[i]->bytes));
  }
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return plans[a].total_blocks < plans[b].total_blocks;
                   });

  std::uint64_t busy = 0;
  std::uint64_t idle = 0;
  std::array<std::uint32_t, kMaxLanes * 8> states{};
  std::array<const std::uint8_t*, kMaxLanes> ptrs{};

  std::size_t pos = 0;
  while (pos < n) {
    const std::size_t blocks_count = plans[order[pos]].total_blocks;
    std::size_t group_end = pos;
    while (group_end < n &&
           plans[order[group_end]].total_blocks == blocks_count) {
      ++group_end;
    }
    for (std::size_t chunk = pos; chunk < group_end; chunk += lanes) {
      const std::size_t active = std::min(lanes, group_end - chunk);
      for (std::size_t l = 0; l < lanes; ++l) {
        const std::uint32_t mi = order[chunk + (l < active ? l : 0)];
        std::copy(seeds[mi]->state.begin(), seeds[mi]->state.end(),
                  states.begin() + static_cast<std::ptrdiff_t>(8 * l));
      }
      for (std::size_t b = 0; b < blocks_count; ++b) {
        for (std::size_t l = 0; l < lanes; ++l) {
          const std::uint32_t mi = order[chunk + (l < active ? l : 0)];
          const LanePlan& p = plans[mi];
          ptrs[l] = b < p.full_blocks
                        ? msgs[mi].data() + kSha256BlockSize * b
                        : p.scratch.data() +
                              kSha256BlockSize * (b - p.full_blocks);
        }
        compress_lanes(backend, states.data(), ptrs.data(), lanes);
      }
      busy += active * blocks_count;
      idle += (lanes - active) * blocks_count;
      for (std::size_t l = 0; l < active; ++l) {
        const std::uint32_t mi = order[chunk + l];
        for (std::size_t v = 0; v < 8; ++v) {
          store_be32(out[mi].data() + 4 * v, states[8 * l + v]);
        }
      }
    }
    pos = group_end;
  }

  const BatchTelemetry& telemetry = batch_telemetry();
  obs::Registry& reg = obs::Registry::global();
  reg.add(telemetry.calls);
  reg.add(telemetry.messages, n);
  reg.add(telemetry.blocks, busy);
  if (idle > 0) reg.add(telemetry.idle_blocks, idle);
}

}  // namespace

std::string_view backend_name(Sha256Backend backend) noexcept {
  switch (backend) {
    case Sha256Backend::kScalar:
      return "scalar";
    case Sha256Backend::kSse2:
      return "sse2";
    case Sha256Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::size_t backend_lanes(Sha256Backend backend) noexcept {
  switch (backend) {
    case Sha256Backend::kScalar:
      return 1;
    case Sha256Backend::kSse2:
      return 4;
    case Sha256Backend::kAvx2:
      return 8;
  }
  return 1;
}

Sha256Backend best_supported_sha256_backend() noexcept {
#if defined(DAP_CRYPTO_HAVE_AVX2) && \
    (defined(__x86_64__) || defined(__i386__))
  if (__builtin_cpu_supports("avx2")) return Sha256Backend::kAvx2;
#endif
#if defined(DAP_CRYPTO_HAVE_SSE2)
  return Sha256Backend::kSse2;
#else
  return Sha256Backend::kScalar;
#endif
}

Sha256Backend active_sha256_backend() noexcept {
  const int forced = g_forced_backend.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Sha256Backend>(forced);
  static const Sha256Backend detected = detect_backend();
  return detected;
}

void force_sha256_backend(Sha256Backend backend) noexcept {
  g_forced_backend.store(static_cast<int>(clamp_to_supported(backend)),
                         std::memory_order_relaxed);
}

void clear_sha256_backend_override() noexcept {
  g_forced_backend.store(-1, std::memory_order_relaxed);
}

void sha256_many(std::span<const common::ByteView> msgs,
                 std::span<Digest> out) {
  const std::size_t n = msgs.size();
  if (n == 0) return;
  static const Sha256Midstate initial = sha256_initial_midstate();
  std::vector<const Sha256Midstate*> seeds(n, &initial);
  hash_resume_batch(seeds, msgs, out);
}

void hmac_many(const HmacKey& key, std::span<const common::ByteView> msgs,
               std::span<Digest> out) {
  const std::size_t n = msgs.size();
  if (n == 0) return;
  std::vector<const HmacKey*> keys(n, &key);
  hmac_many(keys, msgs, out);
}

void hmac_many(std::span<const HmacKey* const> keys,
               std::span<const common::ByteView> msgs,
               std::span<Digest> out) {
  const std::size_t n = msgs.size();
  DAP_REQUIRE(keys.size() == n && out.size() >= n,
              "hmac_many: keys/out must cover every message");
  if (n == 0) return;

  std::vector<const Sha256Midstate*> seeds(n);
  for (std::size_t i = 0; i < n; ++i) {
    seeds[i] = &keys[i]->inner_midstate();
  }
  std::vector<Digest> inner(n);
  hash_resume_batch(seeds, msgs, inner);

  std::vector<common::ByteView> inner_views(n);
  for (std::size_t i = 0; i < n; ++i) {
    seeds[i] = &keys[i]->outer_midstate();
    inner_views[i] = common::ByteView(inner[i].data(), inner[i].size());
  }
  hash_resume_batch(seeds, inner_views, out);

  const BatchTelemetry& telemetry = batch_telemetry();
  obs::Registry& reg = obs::Registry::global();
  reg.add(telemetry.hmac_calls, n);
  reg.add(telemetry.hmac_midstate_hits, n);
}

void prf_walk_many(PrfDomain domain, std::span<const common::Bytes> start,
                   std::span<const std::uint32_t> steps, std::size_t key_size,
                   std::vector<std::vector<common::Bytes>>& trajectories) {
  const std::size_t n = start.size();
  DAP_REQUIRE(steps.size() == n,
              "prf_walk_many: one step count per start value");
  DAP_REQUIRE(key_size >= 1 && key_size <= kSha256DigestSize,
              "prf_walk_many: key_size must be in [1, 32]");
  trajectories.assign(n, {});
  if (n == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    DAP_REQUIRE(start[i].size() == key_size,
                "prf_walk_many: start values must have size key_size");
    trajectories[i].reserve(steps[i]);
  }

  const HmacKey& key = prf_key(domain);
  const Sha256Backend backend = active_sha256_backend();
  const std::size_t lanes = backend_lanes(backend);

  // Every step is exactly 2 lockstep compressions: the inner tail block
  // (key_size <= 32 bytes + padding) and the outer tail block (32-byte
  // inner digest + padding), both resumed from the cached pad midstates.
  std::array<std::uint8_t, kSha256BlockSize> inner_template{};
  inner_template[key_size] = 0x80;
  const std::uint64_t inner_bits =
      (kSha256BlockSize + key_size) * 8;
  for (int i = 0; i < 8; ++i) {
    inner_template[kSha256BlockSize - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(inner_bits >> (56 - 8 * i));
  }
  std::array<std::uint8_t, kSha256BlockSize> outer_template{};
  outer_template[kSha256DigestSize] = 0x80;
  const std::uint64_t outer_bits =
      (kSha256BlockSize + kSha256DigestSize) * 8;
  for (int i = 0; i < 8; ++i) {
    outer_template[kSha256BlockSize - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(outer_bits >> (56 - 8 * i));
  }

  struct Lane {
    bool active = false;
    std::size_t msg = 0;
    std::uint32_t remaining = 0;
    std::array<std::uint8_t, kSha256BlockSize> inner_block;
    std::array<std::uint8_t, kSha256BlockSize> outer_block;
  };
  std::array<Lane, kMaxLanes> lane;
  for (std::size_t l = 0; l < lanes; ++l) {
    lane[l].inner_block = inner_template;
    lane[l].outer_block = outer_template;
  }

  std::uint64_t total_steps = 0;
  std::uint64_t busy = 0;
  std::uint64_t idle = 0;
  std::size_t next = 0;
  std::size_t active_count = 0;
  std::array<std::uint32_t, kMaxLanes * 8> states{};
  std::array<const std::uint8_t*, kMaxLanes> ptrs{};

  // Seed as many lanes as there is work; refill a lane the moment its
  // walk finishes so occupancy stays high even with uneven gap sizes.
  auto refill = [&]() {
    for (std::size_t l = 0; l < lanes; ++l) {
      while (!lane[l].active && next < n) {
        const std::size_t m = next++;
        if (steps[m] == 0) continue;
        lane[l].active = true;
        lane[l].msg = m;
        lane[l].remaining = steps[m];
        std::memcpy(lane[l].inner_block.data(), start[m].data(), key_size);
        ++active_count;
      }
    }
  };
  refill();

  while (active_count > 0) {
    // Inner compression: lane value -> HMAC inner digest.
    std::size_t donor = 0;
    while (!lane[donor].active) ++donor;
    for (std::size_t l = 0; l < lanes; ++l) {
      const Lane& src = lane[l].active ? lane[l] : lane[donor];
      const std::uint32_t* seed = key.inner_midstate().state.data();
      std::copy(seed, seed + 8,
                states.begin() + static_cast<std::ptrdiff_t>(8 * l));
      ptrs[l] = src.inner_block.data();
    }
    compress_lanes(backend, states.data(), ptrs.data(), lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      if (!lane[l].active) continue;
      for (std::size_t v = 0; v < 8; ++v) {
        store_be32(lane[l].outer_block.data() + 4 * v, states[8 * l + v]);
      }
    }
    // Outer compression: inner digest -> next chain value.
    for (std::size_t l = 0; l < lanes; ++l) {
      const Lane& src = lane[l].active ? lane[l] : lane[donor];
      const std::uint32_t* seed = key.outer_midstate().state.data();
      std::copy(seed, seed + 8,
                states.begin() + static_cast<std::ptrdiff_t>(8 * l));
      ptrs[l] = src.outer_block.data();
    }
    compress_lanes(backend, states.data(), ptrs.data(), lanes);

    busy += 2 * active_count;
    idle += 2 * (lanes - active_count);
    total_steps += active_count;

    for (std::size_t l = 0; l < lanes; ++l) {
      if (!lane[l].active) continue;
      std::array<std::uint8_t, kSha256DigestSize> digest;
      for (std::size_t v = 0; v < 8; ++v) {
        store_be32(digest.data() + 4 * v, states[8 * l + v]);
      }
      trajectories[lane[l].msg].emplace_back(digest.begin(),
                                             digest.begin() +
                                                 static_cast<std::ptrdiff_t>(
                                                     key_size));
      std::memcpy(lane[l].inner_block.data(), digest.data(), key_size);
      if (--lane[l].remaining == 0) {
        lane[l].active = false;
        --active_count;
      }
    }
    refill();
  }

  const BatchTelemetry& telemetry = batch_telemetry();
  obs::Registry& reg = obs::Registry::global();
  reg.add(telemetry.calls);
  reg.add(telemetry.messages, n);
  reg.add(telemetry.blocks, busy);
  if (idle > 0) reg.add(telemetry.idle_blocks, idle);
  reg.add(telemetry.prf_calls, total_steps);
  reg.add(telemetry.hmac_calls, total_steps);
  reg.add(telemetry.hmac_midstate_hits, total_steps);
  reg.add(telemetry.chain_walk_steps, total_steps);
}

void publish_lane_occupancy() {
  const BatchTelemetry& telemetry = batch_telemetry();
  obs::Registry& reg = obs::Registry::global();
  const std::uint64_t busy = reg.value(telemetry.blocks);
  const std::uint64_t idle = reg.value(telemetry.idle_blocks);
  const std::uint64_t total = busy + idle;
  if (total == 0) return;
  reg.set(telemetry.occupancy,
          100.0 * static_cast<double>(busy) / static_cast<double>(total));
}

}  // namespace dap::crypto
