#include "crypto/keychain.h"

#include <stdexcept>

#include "common/codec.h"
#include "common/contracts.h"
#include "obs/scoped_timer.h"

namespace dap::crypto {

namespace {
struct KeyChainTelemetry {
  obs::HistogramHandle build_latency;
  obs::HistogramHandle walk_latency;
  obs::CounterHandle walk_steps;
};

// Re-resolved per effective registry so shard overrides (parallel runs)
// never see handles minted against a different registry.
const KeyChainTelemetry& keychain_telemetry() {
  thread_local obs::PerRegistryCache<KeyChainTelemetry> cache;
  return cache.get([](obs::Registry& reg) {
    return KeyChainTelemetry{reg.histogram("crypto.keychain_build_us"),
                             reg.histogram("crypto.chain_walk_us"),
                             reg.counter("crypto.chain_walk_steps")};
  });
}
}  // namespace

KeyChain::KeyChain(common::ByteView seed, std::size_t length,
                   PrfDomain step_domain, std::size_t key_size)
    : domain_(step_domain), key_size_(key_size) {
  const obs::ScopedTimer timer(keychain_telemetry().build_latency);
  if (key_size_ == 0 || key_size_ > kSha256DigestSize) {
    throw std::invalid_argument("KeyChain: key_size must be in [1, 32]");
  }
  if (length == 0) {
    throw std::invalid_argument("KeyChain: length must be >= 1");
  }
  if (seed.empty()) {
    throw std::invalid_argument("KeyChain: empty seed");
  }
  keys_.resize(length + 1);
  // Seed becomes K_length; derive to key_size so the chain is uniform.
  keys_[length] = prf_bytes(domain_, seed, key_size_);
  for (std::size_t i = length; i > 0; --i) {
    keys_[i - 1] = step(keys_[i]);
  }
  DAP_ENSURE(keys_[0].size() == key_size_ && keys_[length].size() == key_size_,
             "KeyChain: every key must have the configured size");
}

const common::Bytes& KeyChain::key(std::size_t i) const {
  if (i >= keys_.size()) {
    throw std::out_of_range("KeyChain::key: index beyond chain length");
  }
  return keys_[i];
}

common::Bytes KeyChain::mac_key(std::size_t i) const {
  return prf_bytes(PrfDomain::kMacKey, key(i));
}

common::Bytes KeyChain::step(common::ByteView k) const {
  return prf_bytes(domain_, k, key_size_);
}

bool KeyChain::verify_key(std::size_t index, common::ByteView candidate,
                          std::size_t anchor_index,
                          common::ByteView anchor_key) const {
  if (anchor_index >= index) return false;
  const common::Bytes walked =
      chain_walk(domain_, candidate, index - anchor_index, key_size_);
  return common::constant_time_equal(walked, anchor_key);
}

common::Bytes chain_walk(PrfDomain domain, common::ByteView key,
                         std::size_t steps, std::size_t key_size) {
  const KeyChainTelemetry& telemetry = keychain_telemetry();
  obs::Registry::global().add(telemetry.walk_steps, steps);
  const obs::ScopedTimer timer(telemetry.walk_latency);
  common::Bytes current(key.begin(), key.end());
  for (std::size_t s = 0; s < steps; ++s) {
    current = prf_bytes(domain, current, key_size);
  }
  DAP_ENSURE(steps == 0 || current.size() == key_size,
             "chain_walk: walked key must have the requested size");
  return current;
}

// Low-level chains are labelled by their anchor key plus the high interval
// index so two intervals never share a seed even under kEftp re-anchoring.
common::Bytes low_chain_seed(common::ByteView anchor_high_key,
                             std::size_t high_interval) {
  common::Writer w;
  w.raw(anchor_high_key);
  w.u64(static_cast<std::uint64_t>(high_interval));
  return prf_bytes(PrfDomain::kLevelConnect, w.data());
}

common::Bytes derive_low_key(common::ByteView anchor_high_key,
                             std::size_t high_interval, std::size_t j,
                             std::size_t low_length, std::size_t key_size) {
  if (j > low_length) {
    throw std::out_of_range("derive_low_key: j beyond chain length");
  }
  const common::Bytes seed = low_chain_seed(anchor_high_key, high_interval);
  // Mirrors KeyChain's construction: the seed maps to the LAST key.
  common::Bytes top = prf_bytes(PrfDomain::kLowChainStep, seed, key_size);
  return chain_walk(PrfDomain::kLowChainStep, top, low_length - j, key_size);
}

TwoLevelKeyChain::TwoLevelKeyChain(common::ByteView seed,
                                   std::size_t high_length,
                                   std::size_t low_length, LevelLink link,
                                   std::size_t key_size)
    // One extra high-level key so interval `high_length` still has a
    // K_{i+1} anchor under the original link mode.
    : high_(seed, high_length + 1, PrfDomain::kHighChainStep, key_size),
      low_length_(low_length),
      link_(link) {
  if (high_length == 0 || low_length == 0) {
    throw std::invalid_argument("TwoLevelKeyChain: lengths must be >= 1");
  }
  low_.reserve(high_length);
  for (std::size_t i = 1; i <= high_length; ++i) {
    low_.emplace_back(low_chain_seed(low_anchor_internal(i), i), low_length_,
                      PrfDomain::kLowChainStep, key_size);
  }
}

std::size_t TwoLevelKeyChain::high_length() const noexcept {
  return high_.length() - 1;  // the extra anchor key is not a usable interval
}

std::size_t TwoLevelKeyChain::key_size() const noexcept {
  return high_.key_size();
}

const common::Bytes& TwoLevelKeyChain::high_key(std::size_t i) const {
  if (i > high_length() + 1) {
    throw std::out_of_range("TwoLevelKeyChain::high_key");
  }
  return high_.key(i);
}

const common::Bytes& TwoLevelKeyChain::high_commitment() const {
  return high_.key(0);
}

common::Bytes TwoLevelKeyChain::high_mac_key(std::size_t i) const {
  return prf_bytes(PrfDomain::kMacKey, high_key(i));
}

const common::Bytes& TwoLevelKeyChain::low_key(std::size_t i,
                                               std::size_t j) const {
  if (i == 0 || i > high_length()) {
    throw std::out_of_range("TwoLevelKeyChain::low_key: high interval");
  }
  return low_[i - 1].key(j);
}

common::Bytes TwoLevelKeyChain::low_mac_key(std::size_t i,
                                            std::size_t j) const {
  return prf_bytes(PrfDomain::kMacKey, low_key(i, j));
}

const common::Bytes& TwoLevelKeyChain::low_anchor(std::size_t i) const {
  if (i == 0 || i > high_length()) {
    throw std::out_of_range("TwoLevelKeyChain::low_anchor");
  }
  return low_anchor_internal(i);
}

const common::Bytes& TwoLevelKeyChain::low_anchor_internal(
    std::size_t i) const {
  return link_ == LevelLink::kOriginal ? high_.key(i + 1) : high_.key(i);
}

}  // namespace dap::crypto
