#pragma once
// Winternitz one-time signatures (WOTS) over SHA-256.
//
// The TESLA family needs an initial *asymmetric* authentication step: the
// very first key-chain commitment must reach receivers unforgeably (TESLA
// signs it; TESLA++ additionally signs periodic packets). No asymmetric
// crypto library is available offline, so we build the classic hash-based
// one-time signature instead — it provides exactly the needed property
// (anyone can verify with a public key; only the holder of the secret can
// sign ONE message) from the same SHA-256 primitive as everything else.
// This substitution is recorded in DESIGN.md.

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace dap::crypto {

struct WotsSignature {
  std::vector<common::Bytes> chains;  // one partial chain value per digit
};

class WotsKeyPair {
 public:
  /// Derives the key pair deterministically from `seed`.
  /// `winternitz_bits` (1, 2, 4 or 8) trades signature size for hashing
  /// cost; 4 is the conventional default.
  explicit WotsKeyPair(common::ByteView seed, unsigned winternitz_bits = 4);

  /// Signs the SHA-256 digest of `message`. A WOTS key must sign at most
  /// one distinct message; signing a second distinct message throws
  /// std::logic_error (re-signing the identical message is allowed).
  WotsSignature sign(common::ByteView message);

  [[nodiscard]] const common::Bytes& public_key() const noexcept {
    return public_key_;
  }
  [[nodiscard]] unsigned winternitz_bits() const noexcept { return w_bits_; }

 private:
  unsigned w_bits_;
  std::vector<common::Bytes> secret_;
  common::Bytes public_key_;
  common::Bytes signed_digest_;  // empty until first sign
};

/// Verifies `sig` on `message` against `public_key` produced with the same
/// `winternitz_bits`. Never throws; malformed signatures verify false.
bool wots_verify(common::ByteView public_key, common::ByteView message,
                 const WotsSignature& sig,
                 unsigned winternitz_bits = 4) noexcept;

/// Recomputes the public key a signature implies for `message` (the fold
/// of the completed chains). Empty result for malformed signatures.
/// Verification is `recovered == expected`; Merkle trees instead hash the
/// recovered key and compare against an authentication path.
common::Bytes wots_recover_public_key(common::ByteView message,
                                      const WotsSignature& sig,
                                      unsigned winternitz_bits = 4);

/// Number of hash chains (digits) for a given Winternitz parameter;
/// exposed for tests and size accounting.
std::size_t wots_chain_count(unsigned winternitz_bits);

}  // namespace dap::crypto
