#include "crypto/mac.h"

#include <stdexcept>

#include "crypto/hmac.h"

namespace dap::crypto {

common::Bytes compute_mac(common::ByteView key, common::ByteView message,
                          std::size_t size) {
  if (size == 0 || size > kSha256DigestSize) {
    throw std::invalid_argument("compute_mac: size must be in [1, 32]");
  }
  const Digest full = hmac_sha256(key, message);
  return common::Bytes(full.begin(),
                       full.begin() + static_cast<std::ptrdiff_t>(size));
}

common::Bytes micro_mac(common::ByteView recv_key, common::ByteView mac,
                        std::size_t size) {
  return compute_mac(recv_key, mac, size);
}

bool verify_mac(common::ByteView key, common::ByteView message,
                common::ByteView tag) {
  if (tag.empty() || tag.size() > kSha256DigestSize) return false;
  const common::Bytes expect = compute_mac(key, message, tag.size());
  return common::constant_time_equal(expect, tag);
}

common::Bytes compute_mac(const HmacKey& key, common::ByteView message,
                          std::size_t size) {
  if (size == 0 || size > kSha256DigestSize) {
    throw std::invalid_argument("compute_mac: size must be in [1, 32]");
  }
  const Digest full = key.mac(message);
  return common::Bytes(full.begin(),
                       full.begin() + static_cast<std::ptrdiff_t>(size));
}

common::Bytes micro_mac(const HmacKey& recv_key, common::ByteView mac,
                        std::size_t size) {
  return compute_mac(recv_key, mac, size);
}

bool verify_mac(const HmacKey& key, common::ByteView message,
                common::ByteView tag) {
  if (tag.empty() || tag.size() > kSha256DigestSize) return false;
  const common::Bytes expect = compute_mac(key, message, tag.size());
  return common::constant_time_equal(expect, tag);
}

}  // namespace dap::crypto
