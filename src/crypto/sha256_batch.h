#pragma once
// Batched multi-lane SHA-256 / HMAC / PRF-walk backend.
//
// Every DAP announce, μMAC check, and TESLA chain reveal bottoms out in
// SHA-256, and the messages are *independent* — so the hot paths batch
// them and compress 4 (SSE2) or 8 (AVX2) message schedules in lockstep,
// one lane per message, with the scalar `Sha256` kept as the reference
// oracle. Every entry point here is bitwise identical to the scalar path
// for every backend, batch size, and lane count; the test suite and the
// fuzz harness enforce that exactly.
//
// Layering: this header sits *below* dap/tesla/fleet (they call down into
// it, never the reverse) and is its own `crypto_batch` node in the lint
// layering DAG so the kernels can never grow an upward dependency.
//
// Backend selection is runtime CPUID dispatch (AVX2 → SSE2 → scalar),
// overridable via the `DAP_CRYPTO_BACKEND` environment variable
// (`scalar` | `sse2` | `avx2`, clamped to what the host/build supports)
// and programmatically via `force_sha256_backend()` for tests.
//
// Telemetry (all deterministic for a fixed workload):
//   crypto.batch.calls            batched entry-point invocations
//   crypto.batch.messages         messages hashed through the batch API
//   crypto.batch.blocks           busy-lane block compressions
//   crypto.batch.idle_lane_blocks padding work on unoccupied lanes
//   crypto.batch.lane_occupancy_pct  gauge, published on demand (see
//                                    publish_lane_occupancy) so parallel
//                                    shard merges stay deterministic

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "crypto/hmac.h"
#include "crypto/prf.h"
#include "crypto/sha256.h"

namespace dap::crypto {

enum class Sha256Backend : std::uint8_t {
  kScalar = 0,  // reference path, 1 lane
  kSse2 = 1,    // 4 lanes (baseline x86-64; scalar elsewhere)
  kAvx2 = 2,    // 8 lanes (requires DAP_SIMD build + host support)
};

/// Stable lowercase name ("scalar" / "sse2" / "avx2").
[[nodiscard]] std::string_view backend_name(Sha256Backend backend) noexcept;

/// Lanes the backend compresses in lockstep (1 / 4 / 8).
[[nodiscard]] std::size_t backend_lanes(Sha256Backend backend) noexcept;

/// The backend the batch entry points will use: the test override if set,
/// else the `DAP_CRYPTO_BACKEND` environment override (clamped to what is
/// compiled in and supported by the CPU), else CPUID auto-detection.
[[nodiscard]] Sha256Backend active_sha256_backend() noexcept;

/// Strongest backend this build + host can run (ignores overrides).
[[nodiscard]] Sha256Backend best_supported_sha256_backend() noexcept;

/// Pins the backend for tests (clamped to what is supported). The batch
/// outputs are backend-independent, so this only changes *how* digests
/// are computed, never their values.
void force_sha256_backend(Sha256Backend backend) noexcept;

/// Removes the force_sha256_backend override.
void clear_sha256_backend_override() noexcept;

/// Batched one-shot hashing: out[i] = sha256(msgs[i]).
/// Requires out.size() >= msgs.size().
void sha256_many(std::span<const common::ByteView> msgs,
                 std::span<Digest> out);

/// Batched HMAC under one precomputed key: out[i] = key.mac(msgs[i]).
/// Counts every message toward crypto.hmac_calls / hmac_midstate_hits,
/// exactly as the scalar HmacKey::mac path does.
void hmac_many(const HmacKey& key, std::span<const common::ByteView> msgs,
               std::span<Digest> out);

/// Batched HMAC with a distinct precomputed key per message:
/// out[i] = keys[i]->mac(msgs[i]). Requires keys.size() == msgs.size().
void hmac_many(std::span<const HmacKey* const> keys,
               std::span<const common::ByteView> msgs, std::span<Digest> out);

/// Batched PRF chain walk with full trajectory capture: trajectories[i]
/// holds the value after 1..steps[i] applications of
/// `prf_bytes(domain, ., key_size)` starting from start[i] — i.e.
/// trajectories[i][s] is the key `s + 1` one-way steps below start[i].
/// Each start value must already have size key_size. This is the
/// workhorse of batched TESLA chain verification
/// (ChainAuthenticator::accept_many); step counts feed the same
/// crypto.prf_calls / crypto.chain_walk_steps counters as the scalar
/// chain_walk path.
void prf_walk_many(PrfDomain domain, std::span<const common::Bytes> start,
                   std::span<const std::uint32_t> steps, std::size_t key_size,
                   std::vector<std::vector<common::Bytes>>& trajectories);

/// Publishes the cumulative lane-occupancy gauge
/// (crypto.batch.lane_occupancy_pct = 100 * busy / (busy + idle)) from
/// the effective registry's batch counters. Call from single-threaded
/// context (bench footers, fleet summaries) — gauges written inside
/// worker shards would make the merge order observable.
void publish_lane_occupancy();

}  // namespace dap::crypto
