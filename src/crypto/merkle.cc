#include "crypto/merkle.h"

#include <stdexcept>

#include "common/codec.h"
#include "common/contracts.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace dap::crypto {

namespace {

common::Bytes hash_pair(common::ByteView left, common::ByteView right) {
  Sha256 h;
  const std::uint8_t tag = 0x01;  // domain-separate inner nodes from leaves
  h.update(common::ByteView(&tag, 1));
  h.update(left);
  h.update(right);
  const Digest d = h.finalize();
  return common::Bytes(d.begin(), d.end());
}

common::Bytes leaf_seed(common::ByteView seed, std::size_t index) {
  common::Writer w;
  w.u64(static_cast<std::uint64_t>(index));
  w.raw(seed);
  const Digest d = hmac_sha256(common::bytes_of("merkle-leaf-seed"), w.data());
  return common::Bytes(d.begin(), d.end());
}

}  // namespace

common::Bytes merkle_leaf(common::ByteView wots_public_key) {
  Sha256 h;
  const std::uint8_t tag = 0x00;
  h.update(common::ByteView(&tag, 1));
  h.update(wots_public_key);
  const Digest d = h.finalize();
  return common::Bytes(d.begin(), d.end());
}

MerkleSigner::MerkleSigner(common::ByteView seed, unsigned height,
                           unsigned winternitz_bits)
    : height_(height), w_bits_(winternitz_bits) {
  if (height_ == 0 || height_ > 16) {
    throw std::invalid_argument("MerkleSigner: height must be in [1, 16]");
  }
  if (seed.empty()) {
    throw std::invalid_argument("MerkleSigner: empty seed");
  }
  const std::size_t leaf_count = std::size_t{1} << height_;
  keys_.reserve(leaf_count);
  leaves_.reserve(leaf_count);
  for (std::size_t i = 0; i < leaf_count; ++i) {
    keys_.emplace_back(leaf_seed(seed, i), w_bits_);
    leaves_.push_back(merkle_leaf(keys_.back().public_key()));
  }
  levels_.push_back(leaves_);
  while (levels_.back().size() > 1) {
    const auto& below = levels_.back();
    std::vector<common::Bytes> level;
    level.reserve(below.size() / 2);
    for (std::size_t i = 0; i + 1 < below.size(); i += 2) {
      level.push_back(hash_pair(below[i], below[i + 1]));
    }
    levels_.push_back(std::move(level));
  }
  root_ = levels_.back().front();
  DAP_ENSURE(levels_.size() == height_ + 1 && levels_.back().size() == 1,
             "MerkleSigner: tree must reduce to a single root");
}

MerkleSignature MerkleSigner::sign(common::ByteView message) {
  if (next_leaf_ >= keys_.size()) {
    throw std::runtime_error("MerkleSigner: all one-time keys spent");
  }
  MerkleSignature sig;
  sig.leaf_index = static_cast<std::uint32_t>(next_leaf_);
  sig.wots = keys_[next_leaf_].sign(message);
  std::size_t index = next_leaf_;
  for (unsigned level = 0; level < height_; ++level) {
    const std::size_t sibling = index ^ 1u;
    sig.auth_path.push_back(levels_[level][sibling]);
    index >>= 1;
  }
  ++next_leaf_;
  DAP_ENSURE(sig.auth_path.size() == height_,
             "MerkleSigner::sign: auth path must have one node per level");
  return sig;
}

bool merkle_verify(common::ByteView root, common::ByteView message,
                   const MerkleSignature& sig, unsigned height,
                   unsigned winternitz_bits) noexcept {
  if (height == 0 || height > 16) return false;
  if (sig.auth_path.size() != height) return false;
  if (sig.leaf_index >= (std::uint32_t{1} << height)) return false;
  const common::Bytes recovered_pk =
      wots_recover_public_key(message, sig.wots, winternitz_bits);
  if (recovered_pk.empty()) return false;
  common::Bytes node = merkle_leaf(recovered_pk);
  std::size_t index = sig.leaf_index;
  for (unsigned level = 0; level < height; ++level) {
    const auto& sibling = sig.auth_path[level];
    if (sibling.size() != kSha256DigestSize) return false;
    node = (index & 1u) ? hash_pair(sibling, node) : hash_pair(node, sibling);
    index >>= 1;
  }
  return common::constant_time_equal(node, root);
}

}  // namespace dap::crypto
