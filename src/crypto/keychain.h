#pragma once
// One-way key chains, the backbone of every TESLA-family protocol.
//
// A chain is generated backwards from a random seed: the seed is the LAST
// key K_N, and K_i = F(K_{i+1}) for a one-way F. Keys are then *used*
// forward in time (K_1, K_2, ...), so revealing K_i never exposes any
// later key. Receivers hold an authenticated commitment (typically K_0)
// and authenticate a disclosed key by walking F the right number of steps.
//
// `TwoLevelKeyChain` implements the multi-level μTESLA structure: a
// high-level chain with long intervals, plus one low-level chain per
// high-level interval. The `LevelLink` mode selects how the low-level
// chain is anchored to the high-level chain:
//   kOriginal (Liu & Ning):  K_{i,n} = F01(K_{i+1})
//   kEftp     (§III-A):      K_{i,n} = F01(K_i)
// EFTP's re-anchoring is exactly what shortens loss recovery by one
// high-level interval, and the tesla/ module exercises both modes.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "crypto/prf.h"

namespace dap::crypto {

/// Key length used on the wire by the paper's protocols (80 bits).
inline constexpr std::size_t kChainKeySize = 10;

class KeyChain {
 public:
  /// Generates a chain of `length + 1` keys K_0..K_length from `seed`
  /// (the seed becomes K_length). `key_size` is the truncated key length
  /// in bytes (1..32). K_0 is the receiver commitment.
  KeyChain(common::ByteView seed, std::size_t length,
           PrfDomain step_domain = PrfDomain::kChainStep,
           std::size_t key_size = kChainKeySize);

  /// Number of *usable* keys (indices 1..length; index 0 is commitment).
  [[nodiscard]] std::size_t length() const noexcept {
    return keys_.size() - 1;
  }
  [[nodiscard]] std::size_t key_size() const noexcept { return key_size_; }
  [[nodiscard]] PrfDomain step_domain() const noexcept { return domain_; }

  /// K_i; throws std::out_of_range for i > length().
  [[nodiscard]] const common::Bytes& key(std::size_t i) const;

  /// The commitment K_0 distributed to receivers at bootstrap.
  [[nodiscard]] const common::Bytes& commitment() const { return key(0); }

  /// Derived MAC key for interval i: F'(K_i). Never MAC with the chain
  /// key itself, or disclosing it would also disclose the MAC key early.
  [[nodiscard]] common::Bytes mac_key(std::size_t i) const;

  /// One chain step: F(k) truncated to key_size.
  [[nodiscard]] common::Bytes step(common::ByteView k) const;

  /// Authenticates `candidate` as K_index against a known-authentic
  /// (anchor_index, anchor_key) with anchor_index < index: walks
  /// index - anchor_index steps of F and compares. This is exactly the
  /// receiver-side "weak authentication" of disclosed keys.
  [[nodiscard]] bool verify_key(std::size_t index,
                                common::ByteView candidate,
                                std::size_t anchor_index,
                                common::ByteView anchor_key) const;

 private:
  PrfDomain domain_;
  std::size_t key_size_;
  std::vector<common::Bytes> keys_;  // keys_[i] == K_i
};

/// Stateless helper usable by receivers that never see a KeyChain object:
/// applies `steps` iterations of the domain's one-way function.
common::Bytes chain_walk(PrfDomain domain, common::ByteView key,
                         std::size_t steps, std::size_t key_size);

/// Deterministic seed of high interval i's low-level chain, given the
/// anchor high-level key selected by the link mode. Public because
/// *receivers* recompute it during loss recovery: once a high-level key is
/// authenticated, the whole low-level chain of the linked interval can be
/// re-derived without having received any of its disclosures.
common::Bytes low_chain_seed(common::ByteView anchor_high_key,
                             std::size_t high_interval);

/// Receiver-side recovery of low-level key K_{i,j} from the authenticated
/// anchor high-level key of interval i (K_{i+1} under kOriginal, K_i under
/// kEftp — the caller picks the right anchor for its link mode).
common::Bytes derive_low_key(common::ByteView anchor_high_key,
                             std::size_t high_interval, std::size_t j,
                             std::size_t low_length, std::size_t key_size);

enum class LevelLink : std::uint8_t {
  kOriginal,  // multi-level μTESLA: low chain of interval i seeded from K_{i+1}
  kEftp,      // EFTP: low chain of interval i seeded from K_i
};

class TwoLevelKeyChain {
 public:
  /// `high_length` high-level intervals, each containing `low_length`
  /// low-level intervals.
  TwoLevelKeyChain(common::ByteView seed, std::size_t high_length,
                   std::size_t low_length, LevelLink link,
                   std::size_t key_size = kChainKeySize);

  [[nodiscard]] std::size_t high_length() const noexcept;
  [[nodiscard]] std::size_t low_length() const noexcept { return low_length_; }
  [[nodiscard]] LevelLink link() const noexcept { return link_; }
  [[nodiscard]] std::size_t key_size() const noexcept;

  /// High-level key K_i (i in 0..high_length).
  [[nodiscard]] const common::Bytes& high_key(std::size_t i) const;
  /// High-level commitment K_0.
  [[nodiscard]] const common::Bytes& high_commitment() const;
  /// MAC key derived from high-level K_i (used to MAC CDM_i).
  [[nodiscard]] common::Bytes high_mac_key(std::size_t i) const;

  /// Low-level key K_{i,j}: high interval i (1-based), low index j in
  /// 0..low_length; K_{i,0} is the low chain's commitment for interval i.
  [[nodiscard]] const common::Bytes& low_key(std::size_t i,
                                             std::size_t j) const;
  [[nodiscard]] common::Bytes low_mac_key(std::size_t i, std::size_t j) const;

  /// The anchor the low chain of interval i is derived from, per the
  /// configured link mode (K_{i+1} original, K_i EFTP).
  [[nodiscard]] const common::Bytes& low_anchor(std::size_t i) const;

 private:
  [[nodiscard]] const common::Bytes& low_anchor_internal(std::size_t i) const;

  KeyChain high_;
  std::size_t low_length_;
  LevelLink link_;
  std::vector<KeyChain> low_;  // low_[i-1] is the chain of high interval i
};

}  // namespace dap::crypto
