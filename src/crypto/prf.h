#pragma once
// Domain-separated pseudorandom functions.
//
// TESLA-family protocols need several *independent* one-way functions from
// the same primitive: F0 (high-level chain step), F1 (low-level chain
// step), F01 (level-connecting function; re-targeted by EFTP), F' (MAC-key
// derivation, so the chain key itself is never used directly as a MAC
// key), and H (the CDM image function of EDRP). Independence is obtained
// by HMAC with a fixed per-domain label, which is the standard PRF
// construction.

#include <cstdint>
#include <string_view>

#include "common/bytes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace dap::crypto {

/// The distinct one-way function domains used across the protocol family.
enum class PrfDomain : std::uint8_t {
  kChainStep = 0,       // F  : TESLA / μTESLA single-level chain
  kHighChainStep = 1,   // F0 : multi-level high-level chain
  kLowChainStep = 2,    // F1 : multi-level low-level chain
  kLevelConnect = 3,    // F01: connects high-level key to a low-level chain
  kMacKey = 4,          // F' : derives the MAC key from a chain key
  kCdmImage = 5,        // H  : EDRP's CDM commitment image
  kReceiverLocal = 6,   // derives per-receiver local secrets (K_recv)
};

/// Human-readable label for a domain (used in traces/tests).
std::string_view domain_label(PrfDomain domain) noexcept;

/// The precomputed HMAC key for `domain`. Domain labels are compile-time
/// constants, so the ipad/opad midstates are computed once per process and
/// every PRF evaluation (chain steps, key derivation, CDM images) pays 2
/// compressions instead of 4. The batched backend seeds its lanes from
/// these same midstates (crypto/sha256_batch.h).
const HmacKey& prf_key(PrfDomain domain) noexcept;

/// PRF_domain(input): 32-byte one-way image of `input` under `domain`.
Digest prf(PrfDomain domain, common::ByteView input) noexcept;

/// Same, as a Bytes buffer truncated/kept at `out_len` bytes (<= 32).
/// Throws std::invalid_argument if out_len > 32 or 0.
common::Bytes prf_bytes(PrfDomain domain, common::ByteView input,
                        std::size_t out_len = kSha256DigestSize);

}  // namespace dap::crypto
