#include "crypto/prf.h"

#include <stdexcept>

#include "crypto/hmac.h"
#include "obs/scoped_timer.h"

namespace dap::crypto {

namespace {
struct PrfTelemetry {
  obs::CounterHandle calls;
  obs::HistogramHandle latency;
};

// Re-resolved per effective registry so shard overrides (parallel runs)
// never see handles minted against a different registry.
const PrfTelemetry& prf_telemetry() {
  thread_local obs::PerRegistryCache<PrfTelemetry> cache;
  return cache.get([](obs::Registry& reg) {
    return PrfTelemetry{reg.counter("crypto.prf_calls"),
                        reg.histogram("crypto.prf_us")};
  });
}
}  // namespace

std::string_view domain_label(PrfDomain domain) noexcept {
  switch (domain) {
    case PrfDomain::kChainStep:
      return "F/chain-step";
    case PrfDomain::kHighChainStep:
      return "F0/high-chain-step";
    case PrfDomain::kLowChainStep:
      return "F1/low-chain-step";
    case PrfDomain::kLevelConnect:
      return "F01/level-connect";
    case PrfDomain::kMacKey:
      return "F'/mac-key";
    case PrfDomain::kCdmImage:
      return "H/cdm-image";
    case PrfDomain::kReceiverLocal:
      return "K_recv/receiver-local";
  }
  return "unknown";
}

Digest prf(PrfDomain domain, common::ByteView input) noexcept {
  const PrfTelemetry& telemetry = prf_telemetry();
  obs::Registry::global().add(telemetry.calls);
  const obs::ScopedTimer timer(telemetry.latency);
  // HMAC keyed by the domain label: distinct labels yield computationally
  // independent functions of the same input.
  const std::string_view label = domain_label(domain);
  const common::ByteView key(
      reinterpret_cast<const std::uint8_t*>(label.data()), label.size());
  return hmac_sha256(key, input);
}

common::Bytes prf_bytes(PrfDomain domain, common::ByteView input,
                        std::size_t out_len) {
  if (out_len == 0 || out_len > kSha256DigestSize) {
    throw std::invalid_argument("prf_bytes: out_len must be in [1, 32]");
  }
  const Digest d = prf(domain, input);
  return common::Bytes(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(out_len));
}

}  // namespace dap::crypto
