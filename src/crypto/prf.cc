#include "crypto/prf.h"

#include <array>
#include <stdexcept>

#include "crypto/hmac.h"
#include "obs/scoped_timer.h"

namespace dap::crypto {

namespace {
struct PrfTelemetry {
  obs::CounterHandle calls;
  obs::HistogramHandle latency;
};

// Re-resolved per effective registry so shard overrides (parallel runs)
// never see handles minted against a different registry.
const PrfTelemetry& prf_telemetry() {
  thread_local obs::PerRegistryCache<PrfTelemetry> cache;
  return cache.get([](obs::Registry& reg) {
    return PrfTelemetry{reg.counter("crypto.prf_calls"),
                        reg.histogram("crypto.prf_us")};
  });
}
}  // namespace

std::string_view domain_label(PrfDomain domain) noexcept {
  switch (domain) {
    case PrfDomain::kChainStep:
      return "F/chain-step";
    case PrfDomain::kHighChainStep:
      return "F0/high-chain-step";
    case PrfDomain::kLowChainStep:
      return "F1/low-chain-step";
    case PrfDomain::kLevelConnect:
      return "F01/level-connect";
    case PrfDomain::kMacKey:
      return "F'/mac-key";
    case PrfDomain::kCdmImage:
      return "H/cdm-image";
    case PrfDomain::kReceiverLocal:
      return "K_recv/receiver-local";
  }
  return "unknown";
}

const HmacKey& prf_key(PrfDomain domain) noexcept {
  // Domain labels never change, so the seven pad midstates are computed
  // exactly once per process. Initialization is thread-safe (magic
  // statics) and the array is immutable afterwards.
  static const std::array<HmacKey, 7> keys = [] {
    std::array<HmacKey, 7> out;
    for (std::uint8_t d = 0; d < 7; ++d) {
      const std::string_view label = domain_label(static_cast<PrfDomain>(d));
      out[d] = HmacKey(common::ByteView(
          reinterpret_cast<const std::uint8_t*>(label.data()), label.size()));
    }
    return out;
  }();
  const auto index = static_cast<std::size_t>(domain);
  return keys[index < keys.size() ? index : 0];
}

Digest prf(PrfDomain domain, common::ByteView input) noexcept {
  const PrfTelemetry& telemetry = prf_telemetry();
  obs::Registry::global().add(telemetry.calls);
  const obs::ScopedTimer timer(telemetry.latency);
  // HMAC keyed by the domain label: distinct labels yield computationally
  // independent functions of the same input. The cached per-domain key
  // skips the per-call ipad/opad recomputation.
  return prf_key(domain).mac(input);
}

common::Bytes prf_bytes(PrfDomain domain, common::ByteView input,
                        std::size_t out_len) {
  if (out_len == 0 || out_len > kSha256DigestSize) {
    throw std::invalid_argument("prf_bytes: out_len must be in [1, 32]");
  }
  const Digest d = prf(domain, input);
  return common::Bytes(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(out_len));
}

}  // namespace dap::crypto
