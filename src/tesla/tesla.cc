#include "tesla/tesla.h"

#include <stdexcept>

#include "common/codec.h"
#include "common/contracts.h"
#include "crypto/mac.h"
#include "wire/frame.h"

namespace dap::tesla {

namespace {

common::Bytes signing_seed(common::ByteView seed) {
  return crypto::prf_bytes(crypto::PrfDomain::kReceiverLocal,
                           common::concat({seed, common::bytes_of("/sign")}));
}

}  // namespace

TeslaSender::TeslaSender(const TeslaConfig& config, common::ByteView seed)
    : config_(config),
      chain_(seed, config.chain_length, crypto::PrfDomain::kChainStep,
             config.key_size),
      signer_(signing_seed(seed)) {
  if (config.disclosure_delay == 0) {
    throw std::invalid_argument("TeslaSender: disclosure_delay must be >= 1");
  }
}

common::Bytes bootstrap_payload(const wire::BootstrapPacket& packet) {
  common::Writer w;
  w.u32(packet.sender);
  w.u32(packet.start_interval);
  w.u64(packet.interval_duration_us);
  w.blob(packet.commitment);
  return std::move(w).take();
}

wire::BootstrapPacket TeslaSender::bootstrap() {
  wire::BootstrapPacket p;
  p.sender = config_.sender_id;
  p.start_interval = 1;
  p.interval_duration_us = config_.schedule.duration();
  p.commitment = chain_.commitment();
  p.signer_public_key = signer_.public_key();
  const auto sig = signer_.sign(bootstrap_payload(p));
  p.signature = wire::encode_wots_signature(sig.chains);
  return p;
}

wire::TeslaPacket TeslaSender::make_packet(std::uint32_t i,
                                           common::ByteView message) const {
  if (i == 0 || i > chain_.length()) {
    throw std::out_of_range("TeslaSender::make_packet: interval out of range");
  }
  wire::TeslaPacket p;
  p.sender = config_.sender_id;
  p.interval = i;
  p.message = common::Bytes(message.begin(), message.end());
  p.mac = crypto::compute_mac(chain_.mac_key(i), message, config_.mac_size);
  if (i > config_.disclosure_delay) {
    p.disclosed_interval = i - config_.disclosure_delay;
    p.disclosed_key = chain_.key(p.disclosed_interval);
  }
  return p;
}

bool verify_bootstrap(const wire::BootstrapPacket& packet,
                      common::ByteView expected_public_key) {
  if (!common::constant_time_equal(packet.signer_public_key,
                                   expected_public_key)) {
    return false;
  }
  const auto chains = wire::decode_wots_signature(packet.signature);
  if (!chains) return false;
  crypto::WotsSignature sig;
  sig.chains = *chains;
  return crypto::wots_verify(expected_public_key, bootstrap_payload(packet),
                             sig);
}

TeslaReceiver::TeslaReceiver(const TeslaConfig& config,
                             common::Bytes commitment, sim::LooseClock clock)
    : config_(config),
      clock_(clock),
      auth_(crypto::PrfDomain::kChainStep, config.key_size,
            std::move(commitment)) {}

std::vector<AuthenticatedMessage> TeslaReceiver::drain_ready(
    sim::SimTime local_now) {
  std::vector<AuthenticatedMessage> out;
  auto it = pending_.begin();
  while (it != pending_.end() && it->first <= auth_.anchor_index()) {
    const std::uint32_t interval = it->first;
    const Pending& entry = it->second;
    const auto mac_key = auth_.mac_key(interval);
    if (mac_key && crypto::verify_mac(*mac_key, entry.message, entry.mac)) {
      ++stats_.macs_verified;
      out.push_back(AuthenticatedMessage{interval, entry.message, local_now});
    } else {
      ++stats_.macs_rejected;
    }
    it = pending_.erase(it);
  }
  stats_.buffered_now = pending_.size();
  return out;
}

std::vector<AuthenticatedMessage> TeslaReceiver::receive(
    const wire::TeslaPacket& packet, sim::SimTime local_now) {
  // Packet fields are attacker-controlled and handled by rejection
  // below; the contract covers receiver configuration only.
  DAP_REQUIRE(config_.disclosure_delay > 0,
              "TeslaReceiver::receive: disclosure delay must be positive");
  ++stats_.packets_received;

  // 1. Key disclosure first: it may release older buffered packets and is
  //    useful even if this packet's own MAC interval is unsafe.
  if (!packet.disclosed_key.empty() && packet.disclosed_interval > 0) {
    const std::uint64_t before = auth_.accepted();
    if (auth_.accept(packet.disclosed_interval, packet.disclosed_key)) {
      if (auth_.accepted() > before) ++stats_.keys_accepted;
    } else {
      ++stats_.keys_rejected;
    }
  }

  // 2. Safety check for the new MAC'd payload.
  if (!clock_.packet_safe(packet.interval, config_.disclosure_delay, local_now,
                          config_.schedule)) {
    ++stats_.packets_unsafe;
    return drain_ready(local_now);
  }

  // 3. Buffer until K_interval is disclosed.
  pending_.emplace(packet.interval, Pending{packet.message, packet.mac});
  ++stats_.packets_buffered;
  return drain_ready(local_now);
}

}  // namespace dap::tesla
