#pragma once
// μTESLA (SPINS, Perrig et al. 2002): TESLA adapted to severely
// resource-constrained nodes.
//
// Two deltas from TESLA: (1) the bootstrap is authenticated with a
// *symmetric* key shared between the base station and each node (no
// signature), and (2) the chain key is disclosed once per interval in a
// dedicated broadcast instead of riding in every data packet, saving
// per-packet bandwidth.

#include <cstdint>
#include <map>
#include <vector>

#include "common/bytes.h"
#include "crypto/keychain.h"
#include "sim/clock_model.h"
#include "tesla/tesla.h"
#include "wire/packet.h"

namespace dap::tesla {

struct MuTeslaConfig {
  wire::NodeId sender_id = 1;
  std::size_t chain_length = 64;
  std::uint32_t disclosure_delay = 2;
  std::size_t key_size = crypto::kChainKeySize;
  std::size_t mac_size = 10;
  sim::IntervalSchedule schedule{0, sim::kSecond};
};

/// Symmetric bootstrap payload: commitment + schedule, MACed under the
/// pairwise master key (unicast base-station -> node in SPINS).
struct MuTeslaBootstrap {
  wire::NodeId sender = 0;
  std::uint32_t start_interval = 1;
  std::uint64_t interval_duration_us = 0;
  common::Bytes commitment;
  common::Bytes mac;  // MAC under the pairwise master key
};

class MuTeslaSender {
 public:
  MuTeslaSender(const MuTeslaConfig& config, common::ByteView seed);

  /// Bootstrap for one node, authenticated with that node's master key.
  [[nodiscard]] MuTeslaBootstrap bootstrap_for(
      common::ByteView master_key) const;

  /// Data packet for interval i (no piggybacked disclosure).
  [[nodiscard]] wire::TeslaPacket make_packet(std::uint32_t i,
                                              common::ByteView message) const;

  /// Once-per-interval key disclosure: K_{i - d} published in interval i.
  /// Returns nullopt while i <= d (nothing to disclose yet).
  [[nodiscard]] std::optional<wire::KeyDisclosure> disclosure(
      std::uint32_t i) const;

  [[nodiscard]] const MuTeslaConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const crypto::KeyChain& chain() const noexcept {
    return chain_;
  }

 private:
  MuTeslaConfig config_;
  crypto::KeyChain chain_;
};

/// Verifies a symmetric bootstrap against the node's master key.
bool verify_mutesla_bootstrap(const MuTeslaBootstrap& bootstrap,
                              common::ByteView master_key);

class MuTeslaReceiver {
 public:
  /// Requires a bootstrap already verified with verify_mutesla_bootstrap.
  MuTeslaReceiver(const MuTeslaConfig& config, common::Bytes commitment,
                  sim::LooseClock clock);

  /// Data path; packets buffer until their interval key is disclosed.
  std::vector<AuthenticatedMessage> receive(const wire::TeslaPacket& packet,
                                            sim::SimTime local_now);

  /// Disclosure path; may release buffered packets.
  std::vector<AuthenticatedMessage> receive(const wire::KeyDisclosure& packet,
                                            sim::SimTime local_now);

  [[nodiscard]] const TeslaReceiverStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::uint32_t latest_key_index() const noexcept {
    return auth_.anchor_index();
  }

 private:
  std::vector<AuthenticatedMessage> drain_ready(sim::SimTime local_now);

  MuTeslaConfig config_;
  sim::LooseClock clock_;
  ChainAuthenticator auth_;
  struct Pending {
    common::Bytes message;
    common::Bytes mac;
  };
  std::multimap<std::uint32_t, Pending> pending_;
  TeslaReceiverStats stats_;
};

}  // namespace dap::tesla
