#include "tesla/resync.h"

#include <string>

#include "common/contracts.h"

namespace dap::tesla {

ResyncController::ResyncController(std::string_view metric_prefix,
                                   ResyncConfig config)
    : config_(config) {
  auto& reg = obs::Registry::global();
  const std::string prefix(metric_prefix);
  ctr_suspects_ = reg.counter(prefix + ".resync_suspect_events");
  ctr_episodes_ = reg.counter(prefix + ".desync_episodes");
  ctr_attempts_ = reg.counter(prefix + ".resync_attempts");
  ctr_successes_ = reg.counter(prefix + ".resync_successes");
  ctr_failures_ = reg.counter(prefix + ".resync_failures");
  ctr_exhausted_ = reg.counter(prefix + ".resync_budget_exhausted");
  hist_latency_ = reg.histogram(prefix + ".resync_latency_us");
}

void ResyncController::note_suspect(sim::SimTime local_now) {
  ++stats_.suspect_events;
  obs::Registry::global().add(ctr_suspects_);
  if (!config_.enabled || desynced_) return;
  if (++streak_ < config_.desync_threshold) return;
  desynced_ = true;
  streak_ = 0;
  episode_start_ = local_now;
  retries_left_ = config_.retry_budget;
  backoff_ = config_.backoff_initial;
  next_attempt_ = local_now;  // first attempt fires immediately
  ++stats_.desync_episodes;
  obs::Registry::global().add(ctr_episodes_);
}

void ResyncController::note_healthy() noexcept {
  if (!desynced_) streak_ = 0;
}

void ResyncController::invalidate() noexcept {
  desynced_ = false;
  streak_ = 0;
  last_calibrated_ = 0;
}

std::optional<SyncCalibration> ResyncController::maybe_resync(
    sim::SimTime local_now) {
  if (!config_.enabled || !desynced_ || !handler_) return std::nullopt;
  if (retries_left_ == 0 || local_now < next_attempt_) return std::nullopt;
  auto& reg = obs::Registry::global();
  ++stats_.attempts;
  reg.add(ctr_attempts_);
  std::optional<SyncCalibration> calibration = handler_(local_now);
  if (calibration.has_value()) {
    ++stats_.successes;
    reg.add(ctr_successes_);
    DAP_ENSURE(local_now >= episode_start_,
               "resync: success cannot precede the episode start");
    reg.observe(hist_latency_,
                static_cast<double>(local_now - episode_start_));
    desynced_ = false;
    streak_ = 0;
    last_calibrated_ = local_now;
    return calibration;
  }
  ++stats_.failures;
  reg.add(ctr_failures_);
  --retries_left_;
  if (retries_left_ == 0) {
    // Budget spent: close the episode; fresh suspicion re-arms it.
    ++stats_.budget_exhausted;
    reg.add(ctr_exhausted_);
    desynced_ = false;
    streak_ = 0;
    return std::nullopt;
  }
  next_attempt_ = local_now + backoff_;
  backoff_ = backoff_ * 2 < config_.backoff_max ? backoff_ * 2
                                                : config_.backoff_max;
  return std::nullopt;
}

sim::SimTime ResyncController::safety_margin(
    sim::SimTime local_now) const noexcept {
  if (config_.drift_allowance_ppm <= 0.0 || local_now <= last_calibrated_) {
    return 0;
  }
  const double elapsed = static_cast<double>(local_now - last_calibrated_);
  return static_cast<sim::SimTime>(elapsed * config_.drift_allowance_ppm /
                                   1e6);
}

}  // namespace dap::tesla
