#include "tesla/teslapp.h"

#include <stdexcept>

#include "common/codec.h"
#include "common/contracts.h"
#include "crypto/mac.h"
#include "obs/scoped_timer.h"

namespace dap::tesla {

namespace {
constexpr unsigned kAnchorMerkleHeight = 4;  // 16 anchors per sender

common::Bytes anchor_signing_seed(common::ByteView seed) {
  return crypto::prf_bytes(
      crypto::PrfDomain::kReceiverLocal,
      common::concat({seed, common::bytes_of("/anchor-sign")}));
}
}  // namespace

common::Bytes anchor_payload(const SignedAnchor& anchor) {
  common::Writer w;
  w.u32(anchor.interval);
  w.blob(anchor.key);
  return std::move(w).take();
}

TeslaPpSender::TeslaPpSender(const TeslaPpConfig& config,
                             common::ByteView seed)
    : config_(config),
      chain_(seed, config.chain_length, crypto::PrfDomain::kChainStep,
             config.key_size),
      signer_(anchor_signing_seed(seed), kAnchorMerkleHeight) {}

SignedAnchor TeslaPpSender::make_anchor(std::uint32_t i) {
  SignedAnchor anchor;
  anchor.interval = i;
  anchor.key = chain_.key(i);  // throws for out-of-range i
  anchor.signature = signer_.sign(anchor_payload(anchor));
  return anchor;
}

bool verify_anchor(const SignedAnchor& anchor, common::ByteView root,
                   unsigned merkle_height) {
  return crypto::merkle_verify(root, anchor_payload(anchor),
                               anchor.signature, merkle_height);
}

wire::MacAnnounce TeslaPpSender::announce(std::uint32_t i,
                                          common::ByteView message) {
  if (i == 0 || i > chain_.length()) {
    throw std::out_of_range("TeslaPpSender::announce: interval");
  }
  announced_[i] = common::Bytes(message.begin(), message.end());
  wire::MacAnnounce p;
  p.sender = config_.sender_id;
  p.interval = i;
  p.mac = crypto::compute_mac(chain_.mac_key(i), message, config_.mac_size);
  return p;
}

wire::MessageReveal TeslaPpSender::reveal(std::uint32_t i) const {
  const auto it = announced_.find(i);
  if (it == announced_.end()) {
    throw std::logic_error("TeslaPpSender::reveal: interval never announced");
  }
  wire::MessageReveal p;
  p.sender = config_.sender_id;
  p.interval = i;
  p.message = it->second;
  p.key = chain_.key(i);
  return p;
}

TeslaPpReceiver::TeslaPpReceiver(const TeslaPpConfig& config,
                                 common::Bytes commitment,
                                 common::Bytes local_secret,
                                 sim::LooseClock clock)
    : TeslaPpReceiver(config, std::move(commitment), 0,
                      std::move(local_secret), clock) {}

TeslaPpReceiver::Telemetry TeslaPpReceiver::make_telemetry() {
  auto& reg = obs::Registry::global();
  return {
      reg.counter("teslapp.announces_received"),
      reg.counter("teslapp.announces_unsafe"),
      reg.counter("teslapp.records_stored"),
      reg.counter("teslapp.records_dropped"),
      reg.counter("teslapp.reveals_received"),
      reg.counter("teslapp.keys_rejected"),
      reg.counter("teslapp.authenticated"),
      reg.counter("teslapp.unmatched"),
      reg.counter("teslapp.admissions_shed"),
      reg.counter("teslapp.crash_restarts"),
      reg.counter("teslapp.mac_key_derivations"),
      reg.counter("teslapp.reveal_batches"),
      reg.counter("teslapp.batched_reveals"),
      reg.histogram("teslapp.rx_announce_us"),
      reg.histogram("teslapp.rx_reveal_us"),
  };
}

TeslaPpReceiver::TeslaPpReceiver(const TeslaPpConfig& config,
                                 common::Bytes anchor_key,
                                 std::uint32_t anchor_index,
                                 common::Bytes local_secret,
                                 sim::LooseClock clock)
    : config_(config),
      telemetry_(make_telemetry()),
      local_secret_(std::move(local_secret)),
      clock_(clock),
      auth_(crypto::PrfDomain::kChainStep, config.key_size,
            std::move(anchor_key), anchor_index),
      resync_("teslapp", config.resync) {
  if (local_secret_.empty()) {
    throw std::invalid_argument("TeslaPpReceiver: empty local secret");
  }
}

TeslaPpReceiver TeslaPpReceiver::from_anchor(const TeslaPpConfig& config,
                                             const SignedAnchor& anchor,
                                             common::Bytes local_secret,
                                             sim::LooseClock clock) {
  return TeslaPpReceiver(config, anchor.key, anchor.interval,
                         std::move(local_secret), clock);
}

common::Bytes TeslaPpReceiver::self_mac(std::uint32_t interval,
                                        common::ByteView mac) const {
  common::Writer w;
  w.u32(interval);
  w.raw(mac);
  common::Bytes out =
      crypto::compute_mac(local_secret_, w.data(), config_.self_mac_size);
  DAP_ENSURE(out.size() == config_.self_mac_size,
             "self_mac: record must have the configured re-MAC size");
  return out;
}

bool TeslaPpReceiver::packet_safe(std::uint32_t i,
                                  sim::SimTime local_now) const noexcept {
  // The drift-allowance margin widens the check toward "the key may
  // already be public", so bounded clock drift can never admit a late
  // forgery — it only costs liveness, which resync restores.
  const sim::SimTime guarded = local_now + resync_.safety_margin(local_now);
  // TESLA++ reveals the key one interval after the announcement (d = 1).
  if (calibration_) {
    return calibration_->packet_safe(i, 1, guarded, config_.schedule);
  }
  return clock_.packet_safe(i, 1, guarded, config_.schedule);
}

void TeslaPpReceiver::set_resync_handler(ResyncFn handler) {
  resync_.set_handler(std::move(handler));
}

void TeslaPpReceiver::tick(sim::SimTime local_now) {
  if (auto calibration = resync_.maybe_resync(local_now)) {
    calibration_ = *calibration;
  }
}

void TeslaPpReceiver::crash_restart(sim::SimTime /*local_now*/) {
  records_.clear();
  pending_.clear();
  auth_.rebase_to_newest();
  calibration_.reset();
  resync_.invalidate();
  ++stats_.crash_restarts;
  obs::Registry::global().add(telemetry_.crash_restarts);
}

std::size_t TeslaPpReceiver::stored_records() const noexcept {
  std::size_t total = 0;
  for (const auto& [interval, bucket] : records_) {
    total += bucket.size();
  }
  return total;
}

void TeslaPpReceiver::receive(const wire::MacAnnounce& packet,
                              sim::SimTime local_now) {
  // Announce content is adversarial input, rejected (never asserted)
  // below; the contract covers configuration only.
  DAP_REQUIRE(config_.mac_size > 0 && config_.self_mac_size > 0,
              "TeslaPpReceiver::receive: receiver must be configured");
  auto& reg = obs::Registry::global();
  const obs::ScopedTimer timer(reg, telemetry_.rx_announce_latency);
  tick(local_now);
  ++stats_.announces_received;
  reg.add(telemetry_.announces_received);
  if (!packet_safe(packet.interval, local_now)) {
    ++stats_.announces_unsafe;
    reg.add(telemetry_.announces_unsafe);
    resync_.note_suspect(local_now);
    tick(local_now);
    return;
  }
  // Degradation: TESLA++ has no reservoir to shrink, so at the pool cap
  // it sheds the admission outright (contrast with DAP's adaptive m).
  if (config_.record_pool_limit != 0 &&
      stored_records() >= config_.record_pool_limit) {
    ++stats_.admissions_shed;
    reg.add(telemetry_.admissions_shed);
    return;
  }
  auto& bucket = records_[packet.interval];
  if (config_.max_records_per_interval != 0 &&
      bucket.size() >= config_.max_records_per_interval) {
    ++stats_.records_dropped;
    reg.add(telemetry_.records_dropped);
    return;
  }
  if (bucket.insert(self_mac(packet.interval, packet.mac)).second) {
    ++stats_.records_stored;
    reg.add(telemetry_.records_stored);
  }
  DAP_INVARIANT(config_.max_records_per_interval == 0 ||
                    bucket.size() <= config_.max_records_per_interval,
                "TeslaPpReceiver: per-interval record cap exceeded");
}

std::vector<AuthenticatedMessage> TeslaPpReceiver::receive(
    const wire::MessageReveal& packet, sim::SimTime local_now) {
  DAP_REQUIRE(config_.self_mac_size > 0,
              "TeslaPpReceiver::receive: receiver must be configured");
  return process_reveal(packet, local_now, nullptr);
}

void TeslaPpReceiver::enqueue(const wire::MessageReveal& packet) {
  pending_.push_back(packet);
}

std::vector<std::vector<AuthenticatedMessage>>
TeslaPpReceiver::drain_pending_batch(sim::SimTime local_now) {
  std::vector<std::vector<AuthenticatedMessage>> out;
  out.reserve(pending_.size());
  if (pending_.empty()) return out;
  auto& reg = obs::Registry::global();
  reg.add(telemetry_.reveal_batches);
  reg.add(telemetry_.batched_reveals, pending_.size());
  BatchContext batch;
  while (!pending_.empty()) {
    const wire::MessageReveal packet = std::move(pending_.front());
    pending_.pop_front();
    out.push_back(process_reveal(packet, local_now, &batch));
  }
  return out;
}

std::vector<AuthenticatedMessage> TeslaPpReceiver::process_reveal(
    const wire::MessageReveal& packet, sim::SimTime local_now,
    BatchContext* batch) {
  auto& reg = obs::Registry::global();
  const obs::ScopedTimer timer(reg, telemetry_.rx_reveal_latency);
  tick(local_now);
  ++stats_.reveals_received;
  reg.add(telemetry_.reveals_received);
  // Weak authentication is never cached across a batch: same-interval
  // reveals can carry different key bytes.
  if (!auth_.accept(packet.interval, packet.key)) {
    ++stats_.keys_rejected;
    reg.add(telemetry_.keys_rejected);
    resync_.note_suspect(local_now);
    tick(local_now);
    return {};
  }
  // In a batch the interval's MAC key F'(K_i) is derived once and shared
  // by every reveal of that interval.
  common::Bytes mac_key;
  const common::Bytes* cached = nullptr;
  if (batch != nullptr) {
    const auto it = batch->mac_keys.find(packet.interval);
    if (it != batch->mac_keys.end()) cached = &it->second;
  }
  if (cached == nullptr) {
    mac_key = *auth_.mac_key(packet.interval);
    ++stats_.mac_key_derivations;
    reg.add(telemetry_.mac_key_derivations);
    if (batch != nullptr) {
      cached = &batch->mac_keys.emplace(packet.interval, mac_key).first->second;
    } else {
      cached = &mac_key;
    }
  }
  const common::Bytes expected_mac =
      crypto::compute_mac(*cached, packet.message, config_.mac_size);
  const common::Bytes expected_record =
      self_mac(packet.interval, expected_mac);

  const auto bucket_it = records_.find(packet.interval);
  if (bucket_it == records_.end() ||
      bucket_it->second.find(expected_record) == bucket_it->second.end()) {
    ++stats_.unmatched;
    reg.add(telemetry_.unmatched);
    return {};
  }
  // One record authenticates one reveal; drop the interval's bucket.
  records_.erase(bucket_it);
  ++stats_.authenticated;
  reg.add(telemetry_.authenticated);
  // Only end-to-end authentication counts as "healthy": forged-but-safe
  // announces must not reset an accumulating suspect streak.
  resync_.note_healthy();
  return {AuthenticatedMessage{packet.interval, packet.message, local_now}};
}

std::size_t TeslaPpReceiver::stored_record_bits() const noexcept {
  std::size_t bits = 0;
  for (const auto& [interval, bucket] : records_) {
    bits += bucket.size() * (config_.self_mac_size * 8 + 32);
  }
  return bits;
}

}  // namespace dap::tesla
