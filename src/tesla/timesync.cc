#include "tesla/timesync.h"

#include <stdexcept>

#include "common/codec.h"
#include "common/rng.h"
#include "crypto/mac.h"

namespace dap::tesla {

namespace {

common::Bytes response_payload(std::uint64_t nonce,
                               sim::SimTime sender_time) {
  common::Writer w;
  w.u64(nonce);
  w.u64(sender_time);
  return std::move(w).take();
}

}  // namespace

SyncCalibration::SyncCalibration(sim::SimTime request_local,
                                 sim::SimTime response_local,
                                 sim::SimTime sender_time)
    : request_local_(request_local),
      response_local_(response_local),
      sender_time_(sender_time) {
  if (response_local < request_local) {
    throw std::invalid_argument("SyncCalibration: response before request");
  }
}

sim::SimTime SyncCalibration::upper_bound_sender_time(
    sim::SimTime local_now) const noexcept {
  const sim::SimTime reference =
      local_now < response_local_ ? response_local_ : local_now;
  // The response was created no earlier than the request departed, so
  // at most (reference - request_local) sender-side time has elapsed.
  return sender_time_ + (reference - request_local_);
}

bool SyncCalibration::packet_safe(
    std::uint32_t i, std::uint32_t d, sim::SimTime local_now,
    const sim::IntervalSchedule& sched) const noexcept {
  return upper_bound_sender_time(local_now) < sched.interval_start(i + d);
}

TimeSyncClient::TimeSyncClient(common::Bytes pairwise_key,
                               std::uint64_t rng_seed)
    : key_(std::move(pairwise_key)), rng_state_(rng_seed) {
  if (key_.empty()) {
    throw std::invalid_argument("TimeSyncClient: empty pairwise key");
  }
}

SyncRequest TimeSyncClient::begin(sim::SimTime local_now) {
  nonce_ = common::splitmix64(rng_state_);
  request_local_ = local_now;
  pending_ = true;
  return SyncRequest{nonce_};
}

std::optional<SyncCalibration> TimeSyncClient::complete(
    const SyncResponse& response, sim::SimTime local_now) {
  if (!pending_) return std::nullopt;
  if (response.nonce != nonce_) return std::nullopt;
  if (local_now < request_local_) return std::nullopt;
  if (!crypto::verify_mac(
          key_, response_payload(response.nonce, response.sender_time),
          response.mac)) {
    return std::nullopt;
  }
  pending_ = false;
  return SyncCalibration(request_local_, local_now, response.sender_time);
}

TimeSyncResponder::TimeSyncResponder(common::Bytes pairwise_key)
    : key_(std::move(pairwise_key)) {
  if (key_.empty()) {
    throw std::invalid_argument("TimeSyncResponder: empty pairwise key");
  }
}

SyncResponse TimeSyncResponder::respond(const SyncRequest& request,
                                        sim::SimTime sender_now) const {
  SyncResponse response;
  response.nonce = request.nonce;
  response.sender_time = sender_now;
  response.mac = crypto::compute_mac(
      key_, response_payload(request.nonce, sender_now));
  return response;
}

}  // namespace dap::tesla
