#pragma once
// Multi-buffer random selection (the DoS-mitigation core shared by
// multi-level μTESLA and DAP).
//
// A receiver keeps `m` slots per authentication round. Copies of a packet
// (authentic or forged — indistinguishable before key disclosure) are
// *offered* one at a time. The k-th offer is kept with probability m/k;
// if kept, it replaces a uniformly random slot. This is reservoir
// sampling: after n offers every copy resides in the buffer set with
// probability exactly m/n, so a flooding attacker gains nothing from
// sending its forgeries early or late — only the volume fraction p
// matters, and all-m-slots-forged happens with probability ~ p^m.
//
// `NaiveDropBuffer` (keep first m, drop rest) and `AlwaysReplaceBuffer`
// (k-th offer always evicts a random slot) exist for the buffer-policy
// ablation: naive-drop lets an attacker who bursts *early* in the
// interval capture all slots deterministically.

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/contracts.h"
#include "common/rng.h"

namespace dap::tesla {

template <typename T>
class ReservoirBuffer {
 public:
  explicit ReservoirBuffer(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("ReservoirBuffer: capacity must be >= 1");
    }
    slots_.reserve(capacity);
  }

  /// Offers one copy; returns true if it was stored.
  bool offer(T value, common::Rng& rng) {
    ++offers_;
    DAP_INVARIANT(slots_.size() <= capacity_,
                  "ReservoirBuffer: slot count exceeds capacity");
    if (slots_.size() < capacity_) {
      slots_.push_back(std::move(value));
      return true;
    }
    // Keep with probability m/k, replacing a uniformly random slot.
    const double keep_probability =
        static_cast<double>(capacity_) / static_cast<double>(offers_);
    DAP_INVARIANT(keep_probability > 0.0 && keep_probability <= 1.0,
                  "ReservoirBuffer: keep probability outside (0,1]");
    if (!rng.bernoulli(keep_probability)) return false;
    const std::size_t victim =
        static_cast<std::size_t>(rng.uniform(0, capacity_ - 1));
    slots_[victim] = std::move(value);
    return true;
  }

  [[nodiscard]] const std::vector<T>& contents() const noexcept {
    return slots_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t offers() const noexcept { return offers_; }
  [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }

  /// Clears contents and the offer counter (start of a new round).
  void reset() noexcept {
    slots_.clear();
    offers_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t offers_ = 0;
  std::vector<T> slots_;
};

/// Ablation policy: first-come-first-kept.
template <typename T>
class NaiveDropBuffer {
 public:
  explicit NaiveDropBuffer(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("NaiveDropBuffer: capacity must be >= 1");
    }
  }

  bool offer(T value, common::Rng&) {
    ++offers_;
    if (slots_.size() >= capacity_) return false;
    slots_.push_back(std::move(value));
    return true;
  }

  [[nodiscard]] const std::vector<T>& contents() const noexcept {
    return slots_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t offers() const noexcept { return offers_; }
  void reset() noexcept {
    slots_.clear();
    offers_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t offers_ = 0;
  std::vector<T> slots_;
};

/// Ablation policy: every offer beyond capacity evicts a random slot
/// (over-weights *late* arrivals; an attacker flooding at interval end wins).
template <typename T>
class AlwaysReplaceBuffer {
 public:
  explicit AlwaysReplaceBuffer(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("AlwaysReplaceBuffer: capacity must be >= 1");
    }
  }

  bool offer(T value, common::Rng& rng) {
    ++offers_;
    if (slots_.size() < capacity_) {
      slots_.push_back(std::move(value));
      return true;
    }
    const std::size_t victim =
        static_cast<std::size_t>(rng.uniform(0, capacity_ - 1));
    slots_[victim] = std::move(value);
    return true;
  }

  [[nodiscard]] const std::vector<T>& contents() const noexcept {
    return slots_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t offers() const noexcept { return offers_; }
  void reset() noexcept {
    slots_.clear();
    offers_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t offers_ = 0;
  std::vector<T> slots_;
};

}  // namespace dap::tesla
