#pragma once
// Receiver-side one-way-chain authentication state, shared by every
// protocol receiver in the family (TESLA, μTESLA, multi-level μTESLA's
// two levels, TESLA++, DAP).
//
// Holds the newest authentic (index, key) anchor and accepts a candidate
// K_i by walking the one-way function i - anchor steps ("weak
// authentication" in the paper's terms). Accepted intermediate keys are
// cached so the MAC key of any past interval is an O(1) lookup.

#include <cstdint>
#include <map>
#include <optional>

#include "common/bytes.h"
#include "crypto/keychain.h"

namespace dap::tesla {

class ChainAuthenticator {
 public:
  /// `commitment` is the authenticated K_0 (or K_anchor with
  /// `anchor_index` > 0 when bootstrapping mid-stream).
  ChainAuthenticator(crypto::PrfDomain domain, std::size_t key_size,
                     common::Bytes commitment, std::uint32_t anchor_index = 0);

  /// Tries to accept `key` as K_i. Returns true if `key` is authentic
  /// (consistent with the anchor). Idempotent for already-known keys.
  bool accept(std::uint32_t i, common::ByteView key);

  /// Authentic key K_i if known.
  [[nodiscard]] std::optional<common::Bytes> key(std::uint32_t i) const;

  /// Derived MAC key F'(K_i) if K_i is known.
  [[nodiscard]] std::optional<common::Bytes> mac_key(std::uint32_t i) const;

  [[nodiscard]] std::uint32_t anchor_index() const noexcept {
    return anchor_index_;
  }
  [[nodiscard]] const common::Bytes& anchor_key() const noexcept {
    return anchor_key_;
  }
  [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

  /// Drops cached keys with index < `floor` (memory hygiene for
  /// long-running receivers); the anchor itself is always kept.
  void prune_below(std::uint32_t floor);

  /// Collapses state to the newest authenticated key — the persistent
  /// anchor a crash/restart keeps. All cached intermediate keys are
  /// dropped, so reveals for intervals at or before the anchor can no
  /// longer authenticate (their records were volatile anyway); later
  /// intervals re-authenticate by walking the chain from the anchor.
  void rebase_to_newest();

 private:
  crypto::PrfDomain domain_;
  std::size_t key_size_;
  std::uint32_t anchor_index_;
  common::Bytes anchor_key_;
  std::map<std::uint32_t, common::Bytes> known_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace dap::tesla
