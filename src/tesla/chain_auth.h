#pragma once
// Receiver-side one-way-chain authentication state, shared by every
// protocol receiver in the family (TESLA, μTESLA, multi-level μTESLA's
// two levels, TESLA++, DAP).
//
// Holds the newest authentic (index, key) anchor and accepts a candidate
// K_i by walking the one-way function i - anchor steps ("weak
// authentication" in the paper's terms). Instead of caching every
// intermediate key, the accept walk records a *checkpoint* every
// `checkpoint_stride` intervals, so verifying a key disclosed after an
// n-interval gap costs the same n hashes it always did but only
// O(n / stride) memory — and any key at or below the anchor is
// re-derivable from the nearest checkpoint above it in at most
// `stride` hashes instead of being a cache miss after pruning.

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "crypto/keychain.h"

namespace dap::tesla {

/// One (interval, key) candidate for batched acceptance. The view must
/// stay valid for the duration of the accept_many call.
struct KeyReveal {
  std::uint32_t interval = 0;
  common::ByteView key{};
};

class ChainAuthenticator {
 public:
  static constexpr std::uint32_t kDefaultCheckpointStride = 16;

  /// `commitment` is the authenticated K_0 (or K_anchor with
  /// `anchor_index` > 0 when bootstrapping mid-stream).
  /// `checkpoint_stride` sets the spacing of cached chain keys: larger
  /// strides use less memory but make below-anchor key derivation walk
  /// up to `stride` extra hashes.
  ChainAuthenticator(crypto::PrfDomain domain, std::size_t key_size,
                     common::Bytes commitment, std::uint32_t anchor_index = 0,
                     std::uint32_t checkpoint_stride = kDefaultCheckpointStride);

  /// Tries to accept `key` as K_i. Returns true if `key` is authentic
  /// (consistent with the anchor). Idempotent for already-known keys.
  bool accept(std::uint32_t i, common::ByteView key);

  /// Batched accept: verdicts and resulting state (anchor, checkpoints,
  /// accepted/rejected counts) are exactly what calling accept()
  /// sequentially in reveal order would produce, but the above-anchor
  /// gap walks run through the multi-lane batched backend
  /// (crypto/sha256_batch.h): every unique candidate is walked down to
  /// the pre-batch anchor once, lanes in lockstep, and the in-order
  /// replay then only compares against the captured trajectories.
  /// walk_steps() accounting differs from the sequential path by design:
  /// it counts the actual lane work (one full walk per unique candidate
  /// to the pre-batch anchor), which is deterministic across backends,
  /// lane counts, and thread counts.
  std::vector<bool> accept_many(std::span<const KeyReveal> reveals);

  /// Authentic key K_i if derivable (i within [floor, anchor], i.e. not
  /// pruned/rebased away); derived from the nearest checkpoint at or
  /// above i in at most `checkpoint_stride` hashes.
  [[nodiscard]] std::optional<common::Bytes> key(std::uint32_t i) const;

  /// Derived MAC key F'(K_i) if K_i is derivable.
  [[nodiscard]] std::optional<common::Bytes> mac_key(std::uint32_t i) const;

  [[nodiscard]] std::uint32_t anchor_index() const noexcept {
    return anchor_index_;
  }
  [[nodiscard]] const common::Bytes& anchor_key() const noexcept {
    return anchor_key_;
  }
  [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }
  /// Reveals proven inconsistent with the chain (any mismatch path:
  /// anchor compare, below-anchor re-derivation, above-anchor walk).
  /// Empty keys and pruned indices are unverifiable, not rejected.
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

  [[nodiscard]] std::uint32_t checkpoint_stride() const noexcept {
    return stride_;
  }
  /// Checkpoints currently cached (anchor included).
  [[nodiscard]] std::size_t cached_keys() const noexcept {
    return known_.size();
  }
  /// One-way-function evaluations spent in accept() walks and
  /// below-anchor derivations since construction.
  [[nodiscard]] std::uint64_t walk_steps() const noexcept {
    return walk_steps_;
  }

  /// Drops derivability of keys with index < `floor` (memory hygiene for
  /// long-running receivers); the anchor itself is always kept.
  void prune_below(std::uint32_t floor);

  /// Collapses state to the newest authenticated key — the persistent
  /// anchor a crash/restart keeps. All checkpoints are dropped, so
  /// reveals for intervals before the anchor can no longer authenticate
  /// (their records were volatile anyway); later intervals
  /// re-authenticate by walking the chain from the anchor.
  void rebase_to_newest();

 private:
  /// K_i for i in the derivable range: nearest checkpoint >= i walked
  /// down (checkpoint_index - i) steps. Precondition: floor <= i <=
  /// anchor (checked by callers).
  [[nodiscard]] common::Bytes derive(std::uint32_t i) const;

  crypto::PrfDomain domain_;
  std::size_t key_size_;
  std::uint32_t stride_;
  std::uint32_t anchor_index_;
  /// Lowest index still derivable; raised by prune_below/rebase.
  std::uint32_t floor_index_;
  common::Bytes anchor_key_;
  /// Sparse checkpoint cache: every stride-th index plus accepted tops
  /// and the anchor.
  std::map<std::uint32_t, common::Bytes> known_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  mutable std::uint64_t walk_steps_ = 0;
};

}  // namespace dap::tesla
