#pragma once
// Multi-level μTESLA (Liu & Ning, TECS 2004), two-level instantiation,
// plus the authors' prior enhancements EFTP and EDRP (paper §III).
//
// Structure: a high-level key chain with long intervals; each high-level
// interval I_i carries its own low-level chain for data packets. During
// I_i the sender repeatedly broadcasts the commitment-distribution
// message CDM_i, which (a) distributes the low-level commitment of
// interval i+2, (b) discloses high-level key K_{i-1}, and (c) is MACed
// under K_i. Receivers keep `cdm_buffers` reservoir slots per interval so
// that flooded forged CDMs only win with probability ~ p^m.
//
// Options reproduced from the paper:
//  - LevelLink::kEftp re-anchors the low chain of interval i to K_i
//    (instead of K_{i+1}), so a receiver that lost the tail of interval
//    i's disclosures can recover its low keys one high-level interval
//    sooner (EFTP's claim).
//  - `edrp = true` adds H(CDM_{i+1}) to CDM_i (a backward hash chain):
//    an authentic CDM_i lets the receiver authenticate CDM_{i+1}
//    *instantly* on arrival, keeping DoS filtering alive across lossy
//    periods (EDRP's claim).

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/keychain.h"
#include "sim/clock_model.h"
#include "tesla/buffer.h"
#include "tesla/chain_auth.h"
#include "tesla/tesla.h"
#include "wire/packet.h"

namespace dap::tesla {

struct MultiLevelConfig {
  wire::NodeId sender_id = 1;
  std::size_t high_length = 16;  // number of high-level intervals
  std::size_t low_length = 10;   // low-level intervals per high interval
  std::uint32_t low_disclosure_delay = 2;  // d for the data (low) level
  std::size_t cdm_buffers = 4;             // reservoir slots per interval
  /// Cap on buffered (unauthenticated) data packets per low-level
  /// interval; excess offers go through reservoir selection, so a data
  /// flood cannot exhaust memory either.
  std::size_t data_buffers = 8;
  std::size_t key_size = crypto::kChainKeySize;
  std::size_t mac_size = 10;
  crypto::LevelLink link = crypto::LevelLink::kOriginal;
  bool edrp = false;
  sim::IntervalSchedule high_schedule{0, 100 * sim::kSecond};

  /// Low-level schedule derived from the high-level one.
  [[nodiscard]] sim::IntervalSchedule low_schedule() const noexcept {
    return {high_schedule.start(),
            high_schedule.duration() / static_cast<sim::SimTime>(low_length)};
  }
  /// Global (wire) index of low interval (i, j), i and j 1-based.
  [[nodiscard]] std::uint32_t global_index(std::uint32_t i,
                                           std::uint32_t j) const noexcept {
    return (i - 1) * static_cast<std::uint32_t>(low_length) + j;
  }
  /// Inverse of global_index: {high, low}.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> split_index(
      std::uint32_t g) const noexcept {
    const auto n = static_cast<std::uint32_t>(low_length);
    return {(g - 1) / n + 1, (g - 1) % n + 1};
  }
};

class MultiLevelSender {
 public:
  MultiLevelSender(const MultiLevelConfig& config, common::ByteView seed);

  /// CDM for high interval i (1-based). CDMs are precomputed (EDRP's hash
  /// chain is built backwards) so this is a lookup.
  [[nodiscard]] const wire::CdmPacket& cdm(std::uint32_t i) const;

  /// Data packet in low interval (i, j), both 1-based; piggybacks the
  /// within-chain disclosure K_{i, j-d} when j > d.
  [[nodiscard]] wire::TeslaPacket make_data_packet(
      std::uint32_t i, std::uint32_t j, common::ByteView message) const;

  /// What a receiver needs at bootstrap: high commitment K_0 and the low
  /// commitments of the first two intervals (CDMs only cover i+2).
  struct BootstrapInfo {
    common::Bytes high_commitment;
    common::Bytes low_commitment_1;
    common::Bytes low_commitment_2;
  };
  [[nodiscard]] BootstrapInfo bootstrap() const;

  [[nodiscard]] const MultiLevelConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const crypto::TwoLevelKeyChain& chain() const noexcept {
    return chain_;
  }

 private:
  MultiLevelConfig config_;
  crypto::TwoLevelKeyChain chain_;
  std::vector<wire::CdmPacket> cdms_;  // cdms_[i-1] = CDM_i
};

/// How a CDM ended up authenticated.
enum class CdmAuthPath : std::uint8_t {
  kMacAfterKeyDisclosure,  // classic: waited for K_i, verified the MAC
  kHashChain,              // EDRP: matched H(CDM_i) from authentic CDM_{i-1}
};

struct MultiLevelEvents {
  std::vector<AuthenticatedMessage> messages;

  struct CdmAuthenticated {
    std::uint32_t high_interval = 0;
    sim::SimTime at = 0;
    CdmAuthPath path = CdmAuthPath::kMacAfterKeyDisclosure;
  };
  std::vector<CdmAuthenticated> cdms;

  struct LowChainRecovered {
    std::uint32_t high_interval = 0;  // whose low chain became derivable
    sim::SimTime at = 0;
  };
  std::vector<LowChainRecovered> recoveries;

  void merge(MultiLevelEvents&& other);
};

struct MultiLevelStats {
  std::uint64_t cdm_received = 0;
  std::uint64_t cdm_unsafe = 0;
  std::uint64_t cdm_buffered = 0;
  std::uint64_t cdm_authenticated = 0;
  std::uint64_t cdm_forged_dropped = 0;  // failed MAC / hash check
  std::uint64_t data_received = 0;
  std::uint64_t data_unsafe = 0;
  std::uint64_t data_authenticated = 0;
  std::uint64_t data_rejected = 0;
  std::uint64_t low_chains_recovered_via_high = 0;
};

class MultiLevelReceiver {
 public:
  MultiLevelReceiver(const MultiLevelConfig& config,
                     const MultiLevelSender::BootstrapInfo& bootstrap,
                     sim::LooseClock clock, common::Rng rng);

  MultiLevelEvents receive(const wire::CdmPacket& packet,
                           sim::SimTime local_now);
  MultiLevelEvents receive(const wire::TeslaPacket& packet,
                           sim::SimTime local_now);

  [[nodiscard]] const MultiLevelStats& stats() const noexcept {
    return stats_;
  }
  /// True once CDM_i has been authenticated (by either path).
  [[nodiscard]] bool cdm_authentic(std::uint32_t i) const noexcept;
  /// True once the low chain of interval i is usable (commitment known).
  [[nodiscard]] bool low_chain_known(std::uint32_t i) const noexcept;

 private:
  /// Registers an authentic CDM's contents; returns resulting events.
  MultiLevelEvents adopt_cdm(const wire::CdmPacket& cdm, sim::SimTime now,
                             CdmAuthPath path);
  /// Creates the low authenticator for interval i from a commitment.
  MultiLevelEvents ensure_low_chain(std::uint32_t i, common::Bytes commitment,
                                    sim::SimTime now, bool via_recovery);
  /// Tries to authenticate buffered CDM copies whose key is now known.
  MultiLevelEvents try_authenticate_buffered(sim::SimTime now);
  /// After a high key became authentic: derive linked low chains (EFTP /
  /// original F01 recovery path).
  MultiLevelEvents recover_from_high_key(std::uint32_t accepted_index,
                                         sim::SimTime now);
  /// Drains pending data packets of intervals whose keys are known.
  std::vector<AuthenticatedMessage> drain_data(sim::SimTime now);

  MultiLevelConfig config_;
  sim::LooseClock clock_;
  common::Rng rng_;
  ChainAuthenticator high_auth_;
  std::map<std::uint32_t, ChainAuthenticator> low_auth_;  // by high interval
  std::map<std::uint32_t, ReservoirBuffer<wire::CdmPacket>> cdm_buffers_;
  std::map<std::uint32_t, bool> cdm_done_;
  std::map<std::uint32_t, common::Bytes> expected_cdm_image_;  // EDRP
  struct PendingData {
    common::Bytes message;
    common::Bytes mac;
  };
  // Per global low-interval index, bounded by data_buffers each.
  std::map<std::uint32_t, ReservoirBuffer<PendingData>> pending_data_;
  MultiLevelStats stats_;
};

/// The byte string EDRP hashes to form H(CDM): MAC payload plus MAC
/// (the disclosed key is excluded — it authenticates via the chain).
common::Bytes cdm_image_payload(const wire::CdmPacket& cdm);

}  // namespace dap::tesla
