#pragma once
// Receiver desynchronization detection and recovery, shared by the DAP
// and TESLA++ receivers.
//
// A TESLA-family receiver is "desynced" when its loose-time calibration
// no longer matches reality (oscillator drift, a clock step, a crash that
// lost the calibration): authentic announces start failing packet_safe
// and disclosed keys stop matching stored records. The controller watches
// those signals, declares a desync episode after a streak of consecutive
// suspect events, and then drives re-execution of the timesync handshake
// with capped exponential backoff and a per-episode retry budget. A
// successful handshake yields a fresh SyncCalibration the receiver
// installs in place of its stale clock bound.
//
// The controller also owns the drift allowance: between calibrations the
// safety check widens its margin by elapsed * ppm, so an oscillator whose
// real skew stays inside the allowance can never authenticate a forged
// message before the desync is detected (the margin always errs on the
// "key may already be public" side).
//
// Telemetry: every controller exports <prefix>.resync_* counters and a
// <prefix>.resync_latency_us histogram through obs::Registry::global().

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>

#include "obs/registry.h"
#include "sim/time.h"
#include "tesla/timesync.h"

namespace dap::tesla {

struct ResyncConfig {
  bool enabled = false;
  /// Consecutive suspect events (unsafe announces, rejected keys) that
  /// declare the receiver desynchronized.
  std::uint64_t desync_threshold = 8;
  /// Handshake attempts per desync episode; when exhausted the episode
  /// closes and a fresh streak of suspicion must accumulate to re-arm.
  std::uint32_t retry_budget = 8;
  sim::SimTime backoff_initial = 50 * sim::kMillisecond;
  sim::SimTime backoff_max = 5 * sim::kSecond;
  /// Assumed worst-case oscillator skew in parts-per-million. 0 disables
  /// the widening margin (pre-existing behaviour).
  double drift_allowance_ppm = 0.0;
};

struct ResyncStats {
  std::uint64_t suspect_events = 0;
  std::uint64_t desync_episodes = 0;
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t budget_exhausted = 0;
};

/// One handshake attempt over whatever transport the deployment wires in
/// (in the chaos harness: a TimeSyncClient/Responder pair riding the same
/// faulty link, so blackouts genuinely fail attempts). Returns the fresh
/// calibration, or nullopt when the responder was unreachable.
using ResyncFn =
    std::function<std::optional<SyncCalibration>(sim::SimTime local_now)>;

class ResyncController {
 public:
  /// `metric_prefix` namespaces the registry instruments ("dap",
  /// "teslapp", ...).
  ResyncController(std::string_view metric_prefix, ResyncConfig config);

  void set_handler(ResyncFn handler) { handler_ = std::move(handler); }
  [[nodiscard]] const ResyncConfig& config() const noexcept {
    return config_;
  }

  /// Feed a desync signal (unsafe announce / key rejection) observed at
  /// `local_now`.
  void note_suspect(sim::SimTime local_now);
  /// Feed a health signal (a strong authentication succeeded): resets the
  /// suspicion streak of a not-yet-declared episode.
  void note_healthy() noexcept;

  /// Drives the recovery state machine; call from receive paths and idle
  /// ticks. Returns a fresh calibration when a handshake just succeeded.
  std::optional<SyncCalibration> maybe_resync(sim::SimTime local_now);

  /// Marks the calibration as lost (crash/restart): the next suspect
  /// streak re-arms an episode from scratch, and the drift margin grows
  /// from the bootstrap epoch again — the receiver is back on its
  /// bootstrap clock bound, so the allowance must cover all drift since
  /// then, not merely since the crash.
  void invalidate() noexcept;

  [[nodiscard]] bool desynced() const noexcept { return desynced_; }
  [[nodiscard]] const ResyncStats& stats() const noexcept { return stats_; }

  /// Extra safety margin at `local_now` under the drift allowance:
  /// (local_now - last calibration) * ppm. Saturates, never throws.
  [[nodiscard]] sim::SimTime safety_margin(
      sim::SimTime local_now) const noexcept;

 private:
  ResyncConfig config_;
  ResyncFn handler_;
  std::uint64_t streak_ = 0;
  bool desynced_ = false;
  sim::SimTime episode_start_ = 0;
  std::uint32_t retries_left_ = 0;
  sim::SimTime next_attempt_ = 0;
  sim::SimTime backoff_ = 0;
  sim::SimTime last_calibrated_ = 0;
  ResyncStats stats_;
  obs::CounterHandle ctr_suspects_;
  obs::CounterHandle ctr_episodes_;
  obs::CounterHandle ctr_attempts_;
  obs::CounterHandle ctr_successes_;
  obs::CounterHandle ctr_failures_;
  obs::CounterHandle ctr_exhausted_;
  obs::HistogramHandle hist_latency_;
};

}  // namespace dap::tesla
