#pragma once
// TESLA (Perrig et al., IEEE S&P 2000): broadcast authentication from a
// one-way key chain and delayed key disclosure.
//
// Sender: interval I_i uses MAC key F'(K_i); each packet carries the
// message, its MAC, and (piggybacked) the key of interval i - d.
// Receiver: buffers packets that pass the loose-time-sync safety check,
// weakly authenticates disclosed keys against the last authentic chain
// key, then verifies buffered MACs once the matching key is public.
// Bootstrap (the chain commitment K_0) is signed with a WOTS one-time
// signature — the hash-based stand-in for TESLA's digital signature
// (see DESIGN.md substitutions).

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "crypto/keychain.h"
#include "crypto/wots.h"
#include "sim/clock_model.h"
#include "sim/time.h"
#include "tesla/chain_auth.h"
#include "wire/packet.h"

namespace dap::tesla {

struct TeslaConfig {
  wire::NodeId sender_id = 1;
  std::size_t chain_length = 64;     // number of usable intervals
  std::uint32_t disclosure_delay = 2;  // d, in intervals
  std::size_t key_size = crypto::kChainKeySize;
  std::size_t mac_size = 10;         // 80-bit packet MACs
  sim::IntervalSchedule schedule{0, sim::kSecond};
};

class TeslaSender {
 public:
  /// `seed` deterministically derives the key chain and the bootstrap
  /// signing key.
  TeslaSender(const TeslaConfig& config, common::ByteView seed);

  /// Signed bootstrap packet carrying the commitment K_0 and schedule.
  [[nodiscard]] wire::BootstrapPacket bootstrap();

  /// Builds the packet for `message` in interval `i` (1-based; throws
  /// std::out_of_range past the chain end). Piggybacks K_{i-d} when it
  /// exists.
  [[nodiscard]] wire::TeslaPacket make_packet(std::uint32_t i,
                                              common::ByteView message) const;

  [[nodiscard]] const TeslaConfig& config() const noexcept { return config_; }
  /// Exposed for tests and for receivers constructed out-of-band.
  [[nodiscard]] const crypto::KeyChain& chain() const noexcept {
    return chain_;
  }

 private:
  TeslaConfig config_;
  crypto::KeyChain chain_;
  crypto::WotsKeyPair signer_;
};

/// A message the receiver has fully authenticated, tagged with the
/// interval it was sent in and the local time authentication completed.
struct AuthenticatedMessage {
  std::uint32_t interval = 0;
  common::Bytes message;
  sim::SimTime authenticated_at = 0;

  bool operator==(const AuthenticatedMessage&) const = default;
};

/// Receiver statistics used by tests and experiments.
struct TeslaReceiverStats {
  std::uint64_t packets_received = 0;
  std::uint64_t packets_unsafe = 0;     // failed the time-sync safety check
  std::uint64_t packets_buffered = 0;
  std::uint64_t keys_accepted = 0;
  std::uint64_t keys_rejected = 0;
  std::uint64_t macs_verified = 0;
  std::uint64_t macs_rejected = 0;
  std::uint64_t buffered_now = 0;       // packets currently awaiting a key
};

class TeslaReceiver {
 public:
  /// Constructed from a *verified* bootstrap: callers must check the WOTS
  /// signature first (`verify_bootstrap` below) — the constructor trusts
  /// its inputs, mirroring the protocol's "authenticated commitment"
  /// assumption.
  TeslaReceiver(const TeslaConfig& config, common::Bytes commitment,
                sim::LooseClock clock);

  /// Processes one packet at local time `local_now`. Returns any messages
  /// that became authenticated as a result (a disclosed key can release
  /// several buffered packets at once).
  std::vector<AuthenticatedMessage> receive(const wire::TeslaPacket& packet,
                                            sim::SimTime local_now);

  [[nodiscard]] const TeslaReceiverStats& stats() const noexcept {
    return stats_;
  }
  /// Index of the newest chain key accepted as authentic (0 = commitment).
  [[nodiscard]] std::uint32_t latest_key_index() const noexcept {
    return auth_.anchor_index();
  }

 private:
  /// Releases buffered packets for every interval with a known key.
  std::vector<AuthenticatedMessage> drain_ready(sim::SimTime local_now);

  TeslaConfig config_;
  sim::LooseClock clock_;
  ChainAuthenticator auth_;
  struct Pending {
    common::Bytes message;
    common::Bytes mac;
  };
  std::multimap<std::uint32_t, Pending> pending_;
  TeslaReceiverStats stats_;
};

/// Verifies a bootstrap packet's WOTS signature over its payload fields.
/// `expected_public_key` pins the sender's identity (distributed
/// out-of-band, e.g. pre-installed on the node).
bool verify_bootstrap(const wire::BootstrapPacket& packet,
                      common::ByteView expected_public_key);

/// The byte string a bootstrap signature covers.
common::Bytes bootstrap_payload(const wire::BootstrapPacket& packet);

}  // namespace dap::tesla
