#pragma once
// TESLA++ (Studer et al., 2009), the VANET-oriented DoS-resistant TESLA
// variant the paper compares DAP against.
//
// Key ideas reproduced: (1) the MAC travels *before* the message, so a
// receiver only buffers a MAC-sized record, never a full packet, and
// (2) the receiver does not store the received MAC itself but a
// *self-computed* shortened re-MAC under a local secret key, so memory
// per record is small and attacker-chosen collisions are useless.
// The message + disclosed key arrive one interval later and are matched
// against the stored re-MACs.
//
// (TESLA++ additionally signs some traffic with ECDSA for non-repudiation;
// that aspect is orthogonal to the DoS/memory trade-off studied here and
// is covered by the WOTS bootstrap signature, per DESIGN.md.)

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "crypto/keychain.h"
#include "crypto/merkle.h"
#include "obs/registry.h"
#include "sim/clock_model.h"
#include "tesla/chain_auth.h"
#include "tesla/resync.h"
#include "tesla/tesla.h"
#include "wire/packet.h"

namespace dap::tesla {

/// A signed chain anchor: TESLA++'s periodic digital signature, realised
/// with a Merkle many-time signature (DESIGN.md substitutions). Binding
/// (interval, K_interval) under the sender's published Merkle root lets a
/// receiver join mid-stream: it trusts K_interval directly instead of
/// walking the chain from K_0.
struct SignedAnchor {
  std::uint32_t interval = 0;
  common::Bytes key;  // K_interval (already public once disclosed)
  crypto::MerkleSignature signature;
};

struct TeslaPpConfig {
  wire::NodeId sender_id = 1;
  std::size_t chain_length = 64;
  std::size_t key_size = crypto::kChainKeySize;
  std::size_t mac_size = 10;       // announced MAC (80-bit)
  std::size_t self_mac_size = 4;   // stored re-MAC record
  /// Optional cap on stored records per interval (0 = unlimited). With a
  /// cap, TESLA++ drops records first-come-first-kept, which is exactly
  /// the weakness DAP's reservoir selection fixes (ablation E9).
  std::size_t max_records_per_interval = 0;
  sim::IntervalSchedule schedule{0, sim::kSecond};
  /// Degradation: cap on total stored records across intervals (0 =
  /// unlimited). TESLA++ has no reservoir to shrink, so at the cap it
  /// sheds new admissions outright — the contrast DAP's adaptive m is
  /// measured against.
  std::size_t record_pool_limit = 0;
  /// Desync detection / timesync re-execution policy (disabled by
  /// default).
  ResyncConfig resync{};
};

class TeslaPpSender {
 public:
  TeslaPpSender(const TeslaPpConfig& config, common::ByteView seed);

  /// Phase 1 (interval i): broadcast MAC only.
  [[nodiscard]] wire::MacAnnounce announce(std::uint32_t i,
                                           common::ByteView message);

  /// Phase 2 (interval i+1): broadcast message + disclosed key. Requires
  /// a prior announce for i (throws std::logic_error otherwise).
  [[nodiscard]] wire::MessageReveal reveal(std::uint32_t i) const;

  /// TESLA++'s periodic signature: a signed anchor for an already-public
  /// key K_i (i.e. i must be at least one interval in the past when the
  /// anchor is broadcast). Each call spends one Merkle leaf; throws
  /// std::runtime_error when the signer is exhausted.
  [[nodiscard]] SignedAnchor make_anchor(std::uint32_t i);

  /// The Merkle root receivers pin (distributed out-of-band).
  [[nodiscard]] const common::Bytes& signature_root() const noexcept {
    return signer_.root();
  }
  [[nodiscard]] std::size_t anchors_remaining() const noexcept {
    return signer_.capacity() - signer_.signatures_used();
  }

  [[nodiscard]] const TeslaPpConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const crypto::KeyChain& chain() const noexcept {
    return chain_;
  }

 private:
  TeslaPpConfig config_;
  crypto::KeyChain chain_;
  crypto::MerkleSigner signer_;
  std::map<std::uint32_t, common::Bytes> announced_;  // interval -> message
};

/// Verifies a signed anchor against the sender's pinned Merkle root.
bool verify_anchor(const SignedAnchor& anchor, common::ByteView root,
                   unsigned merkle_height = 4);

/// The byte string an anchor signature covers.
common::Bytes anchor_payload(const SignedAnchor& anchor);

struct TeslaPpStats {
  std::uint64_t announces_received = 0;
  std::uint64_t announces_unsafe = 0;
  std::uint64_t records_stored = 0;
  std::uint64_t records_dropped = 0;  // over the per-interval cap
  std::uint64_t reveals_received = 0;
  std::uint64_t keys_rejected = 0;
  std::uint64_t authenticated = 0;
  std::uint64_t unmatched = 0;  // reveal without a matching stored record
  std::uint64_t admissions_shed = 0;  // dropped at the record pool cap
  std::uint64_t crash_restarts = 0;
  std::uint64_t mac_key_derivations = 0;  // F'(K_i) computations (batching KPI)
};

class TeslaPpReceiver {
 public:
  /// `commitment` must come from a verified bootstrap; `local_secret` is
  /// this node's private re-MAC key (never leaves the node).
  TeslaPpReceiver(const TeslaPpConfig& config, common::Bytes commitment,
                  common::Bytes local_secret, sim::LooseClock clock);

  /// Mid-stream bootstrap from a *verified* signed anchor (the caller
  /// must check verify_anchor first): the receiver trusts K_anchor
  /// directly and authenticates traffic from interval anchor+1 onward.
  static TeslaPpReceiver from_anchor(const TeslaPpConfig& config,
                                     const SignedAnchor& anchor,
                                     common::Bytes local_secret,
                                     sim::LooseClock clock);

  /// Phase 1: store a shortened self-MAC of the announced MAC.
  void receive(const wire::MacAnnounce& packet, sim::SimTime local_now);

  /// Phase 2: weakly authenticate the key, recompute the expected
  /// self-MAC and match it against interval i's stored records.
  std::vector<AuthenticatedMessage> receive(const wire::MessageReveal& packet,
                                            sim::SimTime local_now);

  // ---- Batched reveal verification ---------------------------------------

  /// Queues a reveal for deferred processing by drain_pending_batch().
  void enqueue(const wire::MessageReveal& packet);

  /// Reveals currently queued.
  [[nodiscard]] std::size_t pending_reveals() const noexcept {
    return pending_.size();
  }

  /// Processes every queued reveal in arrival order, deriving each
  /// interval's MAC key F'(K_i) once per drain instead of once per
  /// reveal. Outcomes match one-at-a-time receive() calls at the same
  /// `local_now` exactly; slot k holds the k-th packet's result.
  std::vector<std::vector<AuthenticatedMessage>> drain_pending_batch(
      sim::SimTime local_now);

  [[nodiscard]] const TeslaPpStats& stats() const noexcept { return stats_; }
  /// Bits currently held in record storage (for the memory experiments).
  [[nodiscard]] std::size_t stored_record_bits() const noexcept;
  /// Total records currently stored across intervals.
  [[nodiscard]] std::size_t stored_records() const noexcept;

  // ---- Resync / recovery (config_.resync) --------------------------------

  /// Wires the timesync-handshake transport used by desync recovery.
  void set_resync_handler(ResyncFn handler);
  /// Idle-time driver for retry/backoff during silent periods.
  void tick(sim::SimTime local_now);
  /// Crash/restart: drops records and cached keys, keeps the newest
  /// authenticated chain key as the persistent anchor.
  void crash_restart(sim::SimTime local_now);

  [[nodiscard]] bool desynced() const noexcept { return resync_.desynced(); }
  [[nodiscard]] const ResyncStats& resync_stats() const noexcept {
    return resync_.stats();
  }

 private:
  TeslaPpReceiver(const TeslaPpConfig& config, common::Bytes anchor_key,
                  std::uint32_t anchor_index, common::Bytes local_secret,
                  sim::LooseClock clock);

  [[nodiscard]] common::Bytes self_mac(std::uint32_t interval,
                                       common::ByteView mac) const;

  /// Per-drain cache of derived MAC keys (outcomes are never cached:
  /// same-interval reveals can carry different key bytes).
  struct BatchContext {
    std::map<std::uint32_t, common::Bytes> mac_keys;
  };

  /// Shared reveal path: receive() passes no context, the batch drain
  /// passes one context per drain.
  std::vector<AuthenticatedMessage> process_reveal(
      const wire::MessageReveal& packet, sim::SimTime local_now,
      BatchContext* batch);

  /// Safety check through the live calibration (when present) or the
  /// bootstrap LooseClock, widened by the drift-allowance margin.
  [[nodiscard]] bool packet_safe(std::uint32_t i,
                                 sim::SimTime local_now) const noexcept;

  /// Global-registry handles mirroring TeslaPpStats; resolved once so
  /// the receive paths update by index only.
  struct Telemetry {
    obs::CounterHandle announces_received;
    obs::CounterHandle announces_unsafe;
    obs::CounterHandle records_stored;
    obs::CounterHandle records_dropped;
    obs::CounterHandle reveals_received;
    obs::CounterHandle keys_rejected;
    obs::CounterHandle authenticated;
    obs::CounterHandle unmatched;
    obs::CounterHandle admissions_shed;
    obs::CounterHandle crash_restarts;
    obs::CounterHandle mac_key_derivations;
    obs::CounterHandle reveal_batches;
    obs::CounterHandle batched_reveals;
    obs::HistogramHandle rx_announce_latency;
    obs::HistogramHandle rx_reveal_latency;
  };

  [[nodiscard]] static Telemetry make_telemetry();

  TeslaPpConfig config_;
  Telemetry telemetry_;
  common::Bytes local_secret_;
  sim::LooseClock clock_;
  ChainAuthenticator auth_;
  std::map<std::uint32_t, std::set<common::Bytes>> records_;
  std::deque<wire::MessageReveal> pending_;  // enqueue() backlog
  TeslaPpStats stats_;
  ResyncController resync_;
  std::optional<SyncCalibration> calibration_;
};

}  // namespace dap::tesla
