#include "tesla/multilevel.h"

#include <stdexcept>

#include "common/contracts.h"
#include "crypto/mac.h"
#include "crypto/sha256.h"

namespace dap::tesla {

void MultiLevelEvents::merge(MultiLevelEvents&& other) {
  messages.insert(messages.end(),
                  std::make_move_iterator(other.messages.begin()),
                  std::make_move_iterator(other.messages.end()));
  cdms.insert(cdms.end(), other.cdms.begin(), other.cdms.end());
  recoveries.insert(recoveries.end(), other.recoveries.begin(),
                    other.recoveries.end());
}

common::Bytes cdm_image_payload(const wire::CdmPacket& cdm) {
  common::Bytes payload = cdm.mac_payload();
  payload.insert(payload.end(), cdm.mac.begin(), cdm.mac.end());
  return payload;
}

MultiLevelSender::MultiLevelSender(const MultiLevelConfig& config,
                                   common::ByteView seed)
    : config_(config),
      chain_(seed, config.high_length, config.low_length, config.link,
             config.key_size) {
  if (config_.low_disclosure_delay == 0) {
    throw std::invalid_argument(
        "MultiLevelSender: low_disclosure_delay must be >= 1");
  }
  if (config_.cdm_buffers == 0) {
    throw std::invalid_argument("MultiLevelSender: cdm_buffers must be >= 1");
  }
  // CDMs are built last-to-first so EDRP's H(CDM_{i+1}) is available.
  cdms_.resize(config_.high_length);
  for (std::size_t i = config_.high_length; i >= 1; --i) {
    wire::CdmPacket& cdm = cdms_[i - 1];
    cdm.sender = config_.sender_id;
    cdm.high_interval = static_cast<std::uint32_t>(i);
    if (i + 2 <= config_.high_length) {
      cdm.low_commitment = chain_.low_key(i + 2, 0);
    }
    if (config_.edrp && i < config_.high_length) {
      cdm.next_cdm_image = crypto::sha256_bytes(cdm_image_payload(cdms_[i]));
    }
    cdm.mac = crypto::compute_mac(chain_.high_mac_key(i), cdm.mac_payload(),
                                  config_.mac_size);
    cdm.disclosed_high_key = chain_.high_key(i - 1);
  }
}

const wire::CdmPacket& MultiLevelSender::cdm(std::uint32_t i) const {
  if (i == 0 || i > cdms_.size()) {
    throw std::out_of_range("MultiLevelSender::cdm: interval");
  }
  return cdms_[i - 1];
}

wire::TeslaPacket MultiLevelSender::make_data_packet(
    std::uint32_t i, std::uint32_t j, common::ByteView message) const {
  if (i == 0 || i > config_.high_length || j == 0 ||
      j > config_.low_length) {
    throw std::out_of_range("MultiLevelSender::make_data_packet: interval");
  }
  wire::TeslaPacket p;
  p.sender = config_.sender_id;
  p.interval = config_.global_index(i, j);
  p.message = common::Bytes(message.begin(), message.end());
  p.mac = crypto::compute_mac(chain_.low_mac_key(i, j), message,
                              config_.mac_size);
  if (j > config_.low_disclosure_delay) {
    const std::uint32_t dj = j - config_.low_disclosure_delay;
    p.disclosed_interval = config_.global_index(i, dj);
    p.disclosed_key = chain_.low_key(i, dj);
  }
  return p;
}

MultiLevelSender::BootstrapInfo MultiLevelSender::bootstrap() const {
  BootstrapInfo info;
  info.high_commitment = chain_.high_commitment();
  info.low_commitment_1 = chain_.low_key(1, 0);
  if (config_.high_length >= 2) {
    info.low_commitment_2 = chain_.low_key(2, 0);
  }
  return info;
}

MultiLevelReceiver::MultiLevelReceiver(
    const MultiLevelConfig& config,
    const MultiLevelSender::BootstrapInfo& bootstrap, sim::LooseClock clock,
    common::Rng rng)
    : config_(config),
      clock_(clock),
      rng_(rng),
      high_auth_(crypto::PrfDomain::kHighChainStep, config.key_size,
                 bootstrap.high_commitment) {
  ensure_low_chain(1, bootstrap.low_commitment_1, 0, false);
  if (!bootstrap.low_commitment_2.empty()) {
    ensure_low_chain(2, bootstrap.low_commitment_2, 0, false);
  }
}

bool MultiLevelReceiver::cdm_authentic(std::uint32_t i) const noexcept {
  const auto it = cdm_done_.find(i);
  return it != cdm_done_.end() && it->second;
}

bool MultiLevelReceiver::low_chain_known(std::uint32_t i) const noexcept {
  return low_auth_.find(i) != low_auth_.end();
}

MultiLevelEvents MultiLevelReceiver::ensure_low_chain(
    std::uint32_t i, common::Bytes commitment, sim::SimTime now,
    bool via_recovery) {
  MultiLevelEvents events;
  if (commitment.empty() || low_chain_known(i) || i == 0 ||
      i > config_.high_length) {
    return events;
  }
  low_auth_.emplace(
      i, ChainAuthenticator(crypto::PrfDomain::kLowChainStep,
                            config_.key_size, std::move(commitment)));
  if (via_recovery) {
    events.recoveries.push_back({i, now});
    ++stats_.low_chains_recovered_via_high;
  }
  events.messages = drain_data(now);
  return events;
}

MultiLevelEvents MultiLevelReceiver::recover_from_high_key(
    std::uint32_t accepted_index, sim::SimTime now) {
  MultiLevelEvents events;
  // Knowing high key K_a makes the low chain of interval a-1 (kOriginal:
  // anchored to K_{i+1}) or a (kEftp: anchored to K_i) fully derivable;
  // all earlier high keys are cached by the authenticator, so every
  // linked chain up to the limit can be recovered — both chains whose
  // commitment was never received (lost CDM) and chains whose trailing
  // key disclosures were lost (lossy end of interval).
  const bool original = config_.link == crypto::LevelLink::kOriginal;
  if (original && accepted_index < 2) return events;
  const std::uint32_t limit = original ? accepted_index - 1 : accepted_index;
  const auto top_index = static_cast<std::uint32_t>(config_.low_length);
  bool advanced = false;
  for (std::uint32_t i = 1;
       i <= limit && i <= static_cast<std::uint32_t>(config_.high_length);
       ++i) {
    const std::uint32_t anchor_index = original ? i + 1 : i;
    const auto anchor = high_auth_.key(anchor_index);
    if (!anchor) continue;
    if (!low_chain_known(i)) {
      common::Bytes commitment = crypto::derive_low_key(
          *anchor, i, 0, config_.low_length, config_.key_size);
      events.merge(ensure_low_chain(i, std::move(commitment), now, true));
      advanced = true;
    }
    // The whole chain is derivable, not just the commitment: inject the
    // top key so buffered data of this interval authenticates right away
    // (this recovers trailing keys whose disclosures were lost).
    const auto it = low_auth_.find(i);
    if (it != low_auth_.end() && it->second.anchor_index() < top_index) {
      const common::Bytes top = crypto::derive_low_key(
          *anchor, i, config_.low_length, config_.low_length,
          config_.key_size);
      if (it->second.accept(top_index, top)) {
        advanced = true;
        events.recoveries.push_back({i, now});
        ++stats_.low_chains_recovered_via_high;
      }
    }
  }
  if (advanced) {
    auto released = drain_data(now);
    events.messages.insert(events.messages.end(),
                           std::make_move_iterator(released.begin()),
                           std::make_move_iterator(released.end()));
  }
  return events;
}

MultiLevelEvents MultiLevelReceiver::try_authenticate_buffered(
    sim::SimTime now) {
  MultiLevelEvents events;
  auto it = cdm_buffers_.begin();
  while (it != cdm_buffers_.end()) {
    const std::uint32_t i = it->first;
    const auto mac_key = high_auth_.mac_key(i);
    if (!mac_key || cdm_authentic(i)) {
      if (cdm_authentic(i)) {
        it = cdm_buffers_.erase(it);
      } else {
        ++it;
      }
      continue;
    }
    const wire::CdmPacket* winner = nullptr;
    std::size_t forged = 0;
    for (const auto& copy : it->second.contents()) {
      if (crypto::verify_mac(*mac_key, copy.mac_payload(), copy.mac)) {
        if (winner == nullptr) winner = &copy;
      } else {
        ++forged;
      }
    }
    stats_.cdm_forged_dropped += forged;
    if (winner != nullptr) {
      const wire::CdmPacket authentic = *winner;  // copy before erase
      it = cdm_buffers_.erase(it);
      events.merge(adopt_cdm(authentic, now,
                             CdmAuthPath::kMacAfterKeyDisclosure));
    } else {
      // All copies forged (the attack succeeded for this interval) or
      // the authentic copy was never stored; drop the round.
      it = cdm_buffers_.erase(it);
    }
  }
  return events;
}

MultiLevelEvents MultiLevelReceiver::adopt_cdm(const wire::CdmPacket& cdm,
                                               sim::SimTime now,
                                               CdmAuthPath path) {
  MultiLevelEvents events;
  const std::uint32_t i = cdm.high_interval;
  if (cdm_authentic(i)) return events;
  cdm_done_[i] = true;
  ++stats_.cdm_authenticated;
  events.cdms.push_back({i, now, path});
  if (config_.edrp && !cdm.next_cdm_image.empty()) {
    expected_cdm_image_[i + 1] = cdm.next_cdm_image;
  }
  if (!cdm.low_commitment.empty()) {
    events.merge(ensure_low_chain(i + 2, cdm.low_commitment, now, false));
  }
  cdm_buffers_.erase(i);
  return events;
}

MultiLevelEvents MultiLevelReceiver::receive(const wire::CdmPacket& packet,
                                             sim::SimTime local_now) {
  // CDM content is adversarial; out-of-range fields are rejected below.
  DAP_REQUIRE(config_.high_length > 0 && config_.low_length > 0,
              "MultiLevelReceiver::receive: chain lengths must be positive");
  ++stats_.cdm_received;
  MultiLevelEvents events;
  const std::uint32_t i = packet.high_interval;
  if (i == 0 || i > config_.high_length) {
    return events;
  }

  // 1. The disclosed high-level key is useful regardless of the CDM's own
  //    authenticity (it is chain-verified on its own).
  if (!packet.disclosed_high_key.empty() && i >= 1) {
    const std::uint32_t before = high_auth_.anchor_index();
    if (high_auth_.accept(i - 1, packet.disclosed_high_key) &&
        high_auth_.anchor_index() > before) {
      events.merge(recover_from_high_key(high_auth_.anchor_index(),
                                         local_now));
      events.merge(try_authenticate_buffered(local_now));
    }
  }

  if (cdm_authentic(i)) return events;

  // 2. EDRP's instant path: an authentic CDM_{i-1} committed to this
  //    CDM's image, so forged copies are filtered immediately.
  const auto image_it = expected_cdm_image_.find(i);
  if (image_it != expected_cdm_image_.end()) {
    if (common::constant_time_equal(
            crypto::sha256_bytes(cdm_image_payload(packet)),
            image_it->second)) {
      events.merge(adopt_cdm(packet, local_now, CdmAuthPath::kHashChain));
    } else {
      ++stats_.cdm_forged_dropped;
    }
    return events;
  }

  // 3. Classic path: buffer only while K_i is provably undisclosed.
  if (!clock_.packet_safe(i, 1, local_now, config_.high_schedule)) {
    ++stats_.cdm_unsafe;
    return events;
  }
  auto [buf_it, created] = cdm_buffers_.try_emplace(i, config_.cdm_buffers);
  buf_it->second.offer(packet, rng_);
  ++stats_.cdm_buffered;
  return events;
}

std::vector<AuthenticatedMessage> MultiLevelReceiver::drain_data(
    sim::SimTime now) {
  std::vector<AuthenticatedMessage> out;
  auto it = pending_data_.begin();
  while (it != pending_data_.end()) {
    const auto [i, j] = config_.split_index(it->first);
    const auto auth_it = low_auth_.find(i);
    if (auth_it == low_auth_.end()) {
      ++it;
      continue;
    }
    const auto mac_key = auth_it->second.mac_key(j);
    if (!mac_key) {
      ++it;
      continue;
    }
    for (const auto& pending : it->second.contents()) {
      if (crypto::verify_mac(*mac_key, pending.message, pending.mac)) {
        ++stats_.data_authenticated;
        out.push_back(AuthenticatedMessage{it->first, pending.message, now});
      } else {
        ++stats_.data_rejected;
      }
    }
    it = pending_data_.erase(it);
  }
  return out;
}

MultiLevelEvents MultiLevelReceiver::receive(const wire::TeslaPacket& packet,
                                             sim::SimTime local_now) {
  DAP_REQUIRE(config_.high_length > 0 && config_.low_length > 0,
              "MultiLevelReceiver::receive: chain lengths must be positive");
  ++stats_.data_received;
  MultiLevelEvents events;
  const auto [i, j] = config_.split_index(packet.interval);
  if (i == 0 || i > config_.high_length || j == 0 ||
      j > config_.low_length) {
    return events;
  }

  // 1. Within-chain low-level key disclosure.
  if (!packet.disclosed_key.empty() && packet.disclosed_interval > 0) {
    const auto [di, dj] = config_.split_index(packet.disclosed_interval);
    const auto auth_it = low_auth_.find(di);
    if (auth_it != low_auth_.end()) {
      auth_it->second.accept(dj, packet.disclosed_key);
    }
  }

  // 2. Safety check at the low level; buffered copies go through the
  //    same bounded reservoir selection as CDMs so a data flood cannot
  //    exhaust memory.
  if (!clock_.packet_safe(packet.interval, config_.low_disclosure_delay,
                          local_now, config_.low_schedule())) {
    ++stats_.data_unsafe;
  } else {
    auto [slot, created] =
        pending_data_.try_emplace(packet.interval, config_.data_buffers);
    slot->second.offer(PendingData{packet.message, packet.mac}, rng_);
  }

  events.messages = drain_data(local_now);
  return events;
}

}  // namespace dap::tesla
