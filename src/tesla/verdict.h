#pragma once
// Per-reveal verification verdicts.
//
// Receivers across the protocol family reach the same small set of
// outcomes when judging a (M_i, K_i, i) reveal; naming them lets the
// fleet layer tag verify spans with the reject reason instead of a
// bare accept/reject bit.

#include <cstdint>
#include <string_view>

namespace dap::tesla {

enum class RevealVerdict : std::uint8_t {
  kAccepted,      // weak + strong authentication both passed
  kWeakAuthFail,  // disclosed key failed the one-way-chain walk
  kNoRecord,      // key fine, but no buffered uMAC record matched
  kKeyPruned,     // per-interval MAC key no longer derivable/retained
};

[[nodiscard]] constexpr std::string_view reveal_verdict_name(
    RevealVerdict verdict) noexcept {
  switch (verdict) {
    case RevealVerdict::kAccepted:
      return "accepted";
    case RevealVerdict::kWeakAuthFail:
      return "weak_auth_fail";
    case RevealVerdict::kNoRecord:
      return "no_record";
    case RevealVerdict::kKeyPruned:
      return "key_pruned";
  }
  return "unknown";
}

}  // namespace dap::tesla
