#include "tesla/chain_auth.h"

#include <stdexcept>

#include "common/contracts.h"

namespace dap::tesla {

ChainAuthenticator::ChainAuthenticator(crypto::PrfDomain domain,
                                       std::size_t key_size,
                                       common::Bytes commitment,
                                       std::uint32_t anchor_index)
    : domain_(domain),
      key_size_(key_size),
      anchor_index_(anchor_index),
      anchor_key_(std::move(commitment)) {
  if (anchor_key_.empty()) {
    throw std::invalid_argument("ChainAuthenticator: empty commitment");
  }
  if (key_size_ == 0) {
    throw std::invalid_argument("ChainAuthenticator: key_size must be >= 1");
  }
  known_[anchor_index_] = anchor_key_;
}

bool ChainAuthenticator::accept(std::uint32_t i, common::ByteView key) {
  if (key.empty()) return false;
  if (i <= anchor_index_) {
    const auto it = known_.find(i);
    return it != known_.end() && common::constant_time_equal(it->second, key);
  }
  const common::Bytes walked =
      crypto::chain_walk(domain_, key, i - anchor_index_, key_size_);
  if (!common::constant_time_equal(walked, anchor_key_)) {
    ++rejected_;
    return false;
  }
  const std::uint32_t old_anchor = anchor_index_;
  common::Bytes current(key.begin(), key.end());
  for (std::uint32_t j = i; j > old_anchor; --j) {
    known_[j] = current;
    current = crypto::chain_walk(domain_, current, 1, key_size_);
  }
  anchor_index_ = i;
  anchor_key_ = known_[i];
  ++accepted_;
  // The anchor only ever moves forward, and every interval between the
  // old and new anchor now has a cached authentic key.
  DAP_ENSURE(anchor_index_ > old_anchor,
             "ChainAuthenticator: anchor index must advance monotonically");
  DAP_ENSURE(known_.count(anchor_index_) == 1,
             "ChainAuthenticator: accepted key missing from the cache");
  return true;
}

std::optional<common::Bytes> ChainAuthenticator::key(std::uint32_t i) const {
  const auto it = known_.find(i);
  if (it == known_.end()) return std::nullopt;
  return it->second;
}

std::optional<common::Bytes> ChainAuthenticator::mac_key(
    std::uint32_t i) const {
  const auto k = key(i);
  if (!k) return std::nullopt;
  return crypto::prf_bytes(crypto::PrfDomain::kMacKey, *k);
}

void ChainAuthenticator::rebase_to_newest() {
  // accept() keeps the anchor at the newest authenticated key, so the
  // rebase only needs to drop the volatile cache around it.
  known_.clear();
  known_[anchor_index_] = anchor_key_;
}

void ChainAuthenticator::prune_below(std::uint32_t floor) {
  auto it = known_.begin();
  while (it != known_.end() && it->first < floor) {
    if (it->first == anchor_index_) break;
    it = known_.erase(it);
  }
}

}  // namespace dap::tesla
