#include "tesla/chain_auth.h"

#include <stdexcept>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "crypto/sha256_batch.h"

namespace dap::tesla {

ChainAuthenticator::ChainAuthenticator(crypto::PrfDomain domain,
                                       std::size_t key_size,
                                       common::Bytes commitment,
                                       std::uint32_t anchor_index,
                                       std::uint32_t checkpoint_stride)
    : domain_(domain),
      key_size_(key_size),
      stride_(checkpoint_stride == 0 ? 1 : checkpoint_stride),
      anchor_index_(anchor_index),
      floor_index_(anchor_index),
      anchor_key_(std::move(commitment)) {
  if (anchor_key_.empty()) {
    throw std::invalid_argument("ChainAuthenticator: empty commitment");
  }
  if (key_size_ == 0) {
    throw std::invalid_argument("ChainAuthenticator: key_size must be >= 1");
  }
  known_[anchor_index_] = anchor_key_;
}

bool ChainAuthenticator::accept(std::uint32_t i, common::ByteView key) {
  // rejected_ counts reveals *proven* inconsistent with the chain, on
  // every mismatch path (anchor, below-anchor, above-anchor walk).
  // Malformed (empty) keys and pruned indices return false uncounted:
  // neither is evidence of forgery — one is a framing error, the other
  // is unverifiable, exactly as a cache miss was before checkpointing.
  if (key.empty()) return false;
  if (i == anchor_index_) {
    // The anchor survives any prune, so it always verifies directly.
    if (!common::constant_time_equal(anchor_key_, key)) {
      ++rejected_;
      return false;
    }
    return true;
  }
  if (i < anchor_index_) {
    // Below-anchor reveals re-derive the authentic key instead of
    // looking it up.
    if (i < floor_index_) return false;
    if (!common::constant_time_equal(derive(i), key)) {
      ++rejected_;
      return false;
    }
    return true;
  }
  // One downward pass from the candidate to the anchor: verifies the
  // chain AND collects the checkpoints, where the pre-checkpoint code
  // paid a second full walk to populate its every-key cache.
  const std::uint32_t old_anchor = anchor_index_;
  std::vector<std::pair<std::uint32_t, common::Bytes>> checkpoints;
  common::Bytes current(key.begin(), key.end());
  for (std::uint32_t j = i; j > old_anchor; --j) {
    if (j == i || j % stride_ == 0) {
      checkpoints.emplace_back(j, current);
    }
    current = crypto::chain_walk(domain_, current, 1, key_size_);
    ++walk_steps_;
  }
  if (!common::constant_time_equal(current, anchor_key_)) {
    ++rejected_;
    return false;
  }
  for (auto& [index, checkpoint_key] : checkpoints) {
    known_[index] = std::move(checkpoint_key);
  }
  anchor_index_ = i;
  anchor_key_ = known_[i];
  ++accepted_;
  // The anchor only ever moves forward, and every interval between the
  // old and new anchor is now derivable from a cached checkpoint.
  DAP_ENSURE(anchor_index_ > old_anchor,
             "ChainAuthenticator: anchor index must advance monotonically");
  DAP_ENSURE(known_.count(anchor_index_) == 1,
             "ChainAuthenticator: accepted key missing from the cache");
  return true;
}

std::vector<bool> ChainAuthenticator::accept_many(
    std::span<const KeyReveal> reveals) {
  std::vector<bool> verdicts;
  verdicts.reserve(reveals.size());

  // Phase 1: walk every unique above-anchor candidate of the chain's key
  // size down to the *pre-batch* anchor through the multi-lane backend,
  // capturing the full trajectory (value after every step). Candidates
  // of any other size (malformed/adversarial) fall back to the scalar
  // accept() during replay, so outcomes stay exact.
  const std::uint32_t anchor0 = anchor_index_;
  std::map<std::pair<std::uint32_t, common::Bytes>, std::size_t> unique_of;
  std::vector<common::Bytes> starts;
  std::vector<std::uint32_t> gaps;
  for (const KeyReveal& r : reveals) {
    if (r.key.empty() || r.interval <= anchor0) continue;
    if (r.key.size() != key_size_) continue;
    common::Bytes key(r.key.begin(), r.key.end());
    const auto [it, inserted] =
        unique_of.try_emplace({r.interval, std::move(key)}, starts.size());
    if (inserted) {
      starts.push_back(it->first.second);
      gaps.push_back(r.interval - anchor0);
    }
  }
  std::vector<std::vector<common::Bytes>> traj;
  if (!starts.empty()) {
    crypto::prf_walk_many(domain_, starts, gaps, key_size_, traj);
    for (const std::uint32_t gap : gaps) walk_steps_ += gap;
  }

  // Phase 2: replay the queue in order. This is accept()'s exact logic,
  // with every chain step replaced by a trajectory lookup: the value j
  // steps below candidate K_i is traj[u][j - 1], so the compare against
  // the *current* anchor (which earlier accepts in this very batch may
  // have advanced) is traj[u][i - anchor - 1].
  for (const KeyReveal& r : reveals) {
    const std::uint32_t i = r.interval;
    if (r.key.empty()) {
      verdicts.push_back(false);
      continue;
    }
    if (i == anchor_index_) {
      const bool ok = common::constant_time_equal(anchor_key_, r.key);
      if (!ok) ++rejected_;
      verdicts.push_back(ok);
      continue;
    }
    if (i < anchor_index_) {
      if (i < floor_index_) {
        verdicts.push_back(false);
        continue;
      }
      const bool ok = common::constant_time_equal(derive(i), r.key);
      if (!ok) ++rejected_;
      verdicts.push_back(ok);
      continue;
    }
    const auto it =
        unique_of.find({i, common::Bytes(r.key.begin(), r.key.end())});
    if (it == unique_of.end()) {
      // Key size mismatch: the scalar path handles it bit-for-bit.
      verdicts.push_back(accept(i, r.key));
      continue;
    }
    const std::vector<common::Bytes>& t = traj[it->second];
    const std::uint32_t old_anchor = anchor_index_;
    const std::uint32_t gap_now = i - old_anchor;
    DAP_INVARIANT(gap_now >= 1 && gap_now <= t.size(),
                  "accept_many: trajectory must reach the current anchor");
    if (!common::constant_time_equal(t[gap_now - 1], anchor_key_)) {
      ++rejected_;
      verdicts.push_back(false);
      continue;
    }
    for (std::uint32_t j = i; j > old_anchor; --j) {
      if (j == i || j % stride_ == 0) {
        known_[j] = j == i ? common::Bytes(r.key.begin(), r.key.end())
                           : t[i - j - 1];
      }
    }
    anchor_index_ = i;
    anchor_key_ = known_[i];
    ++accepted_;
    DAP_ENSURE(anchor_index_ > old_anchor,
               "ChainAuthenticator: anchor index must advance monotonically");
    DAP_ENSURE(known_.count(anchor_index_) == 1,
               "ChainAuthenticator: accepted key missing from the cache");
    verdicts.push_back(true);
  }
  return verdicts;
}

common::Bytes ChainAuthenticator::derive(std::uint32_t i) const {
  const auto it = known_.lower_bound(i);
  DAP_INVARIANT(it != known_.end(),
                "ChainAuthenticator::derive: no checkpoint at or above index");
  if (it->first == i) return it->second;
  const std::uint32_t gap = it->first - i;
  walk_steps_ += gap;
  return crypto::chain_walk(domain_, it->second, gap, key_size_);
}

std::optional<common::Bytes> ChainAuthenticator::key(std::uint32_t i) const {
  if (i == anchor_index_) return anchor_key_;
  if (i < floor_index_ || i > anchor_index_) return std::nullopt;
  return derive(i);
}

std::optional<common::Bytes> ChainAuthenticator::mac_key(
    std::uint32_t i) const {
  const auto k = key(i);
  if (!k) return std::nullopt;
  return crypto::prf_bytes(crypto::PrfDomain::kMacKey, *k);
}

void ChainAuthenticator::rebase_to_newest() {
  // accept() keeps the anchor at the newest authenticated key, so the
  // rebase only needs to drop the volatile checkpoints around it.
  known_.clear();
  known_[anchor_index_] = anchor_key_;
  floor_index_ = anchor_index_;
}

void ChainAuthenticator::prune_below(std::uint32_t floor) {
  if (floor > floor_index_) floor_index_ = floor;
  auto it = known_.begin();
  while (it != known_.end() && it->first < floor) {
    if (it->first == anchor_index_) break;
    it = known_.erase(it);
  }
}

}  // namespace dap::tesla
