#pragma once
// Loose time synchronization protocol (RFC 4082 §3.4 style).
//
// Everything TESLA-family needs is an UPPER BOUND on the sender's clock.
// The receiver sends a nonce; the sender replies with (nonce, its clock
// reading), MACed under the pairwise key. Because the response was
// generated no earlier than the request left, the sender's clock at any
// later local time t is at most
//     response.sender_time + (t - t_request)
// — regardless of network delays. The bound's slack equals the
// round-trip time, which is also exactly the `max_offset` a LooseClock
// needs, so a completed sync converts directly into the safety check
// used by every receiver here.

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "sim/clock_model.h"
#include "sim/time.h"

namespace dap::tesla {

struct SyncRequest {
  std::uint64_t nonce = 0;
};

struct SyncResponse {
  std::uint64_t nonce = 0;
  sim::SimTime sender_time = 0;  // sender's clock when it built the reply
  common::Bytes mac;             // MAC over (nonce | sender_time)
};

/// The result of a completed handshake.
class SyncCalibration {
 public:
  SyncCalibration(sim::SimTime request_local, sim::SimTime response_local,
                  sim::SimTime sender_time);

  /// Upper bound on the sender's clock at receiver-local time `t`
  /// (t >= the response arrival; earlier queries return the bound at
  /// arrival time).
  [[nodiscard]] sim::SimTime upper_bound_sender_time(
      sim::SimTime local_now) const noexcept;

  /// TESLA safety check under this calibration: may a packet claiming
  /// interval `i` (disclosure delay `d`) still be trusted at `local_now`?
  [[nodiscard]] bool packet_safe(std::uint32_t i, std::uint32_t d,
                                 sim::SimTime local_now,
                                 const sim::IntervalSchedule& sched)
      const noexcept;

  /// The bound's slack: the round-trip time of the handshake.
  [[nodiscard]] sim::SimTime uncertainty() const noexcept {
    return response_local_ - request_local_;
  }

 private:
  sim::SimTime request_local_;
  sim::SimTime response_local_;
  sim::SimTime sender_time_;
};

/// Receiver side of the handshake. One in-flight request at a time;
/// stale or forged responses are rejected.
class TimeSyncClient {
 public:
  /// `pairwise_key` authenticates the responder; `rng_seed` draws nonces.
  TimeSyncClient(common::Bytes pairwise_key, std::uint64_t rng_seed);

  /// Starts a handshake at `local_now`; returns the request to send.
  SyncRequest begin(sim::SimTime local_now);

  /// Processes a response at `local_now`. Returns the calibration on
  /// success; nullopt for wrong nonce, bad MAC, no pending request, or
  /// time running backwards.
  std::optional<SyncCalibration> complete(const SyncResponse& response,
                                          sim::SimTime local_now);

  [[nodiscard]] bool pending() const noexcept { return pending_; }

 private:
  common::Bytes key_;
  std::uint64_t rng_state_;
  bool pending_ = false;
  std::uint64_t nonce_ = 0;
  sim::SimTime request_local_ = 0;
};

/// Sender side: answers any request with its current clock reading.
class TimeSyncResponder {
 public:
  explicit TimeSyncResponder(common::Bytes pairwise_key);

  [[nodiscard]] SyncResponse respond(const SyncRequest& request,
                                     sim::SimTime sender_now) const;

 private:
  common::Bytes key_;
};

}  // namespace dap::tesla
