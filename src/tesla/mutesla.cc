#include "tesla/mutesla.h"

#include <stdexcept>

#include "common/codec.h"
#include "common/contracts.h"
#include "crypto/mac.h"

namespace dap::tesla {

namespace {

common::Bytes bootstrap_mac_payload(const MuTeslaBootstrap& b) {
  common::Writer w;
  w.u32(b.sender);
  w.u32(b.start_interval);
  w.u64(b.interval_duration_us);
  w.blob(b.commitment);
  return std::move(w).take();
}

}  // namespace

MuTeslaSender::MuTeslaSender(const MuTeslaConfig& config,
                             common::ByteView seed)
    : config_(config),
      chain_(seed, config.chain_length, crypto::PrfDomain::kChainStep,
             config.key_size) {
  if (config.disclosure_delay == 0) {
    throw std::invalid_argument(
        "MuTeslaSender: disclosure_delay must be >= 1");
  }
}

MuTeslaBootstrap MuTeslaSender::bootstrap_for(
    common::ByteView master_key) const {
  MuTeslaBootstrap b;
  b.sender = config_.sender_id;
  b.start_interval = 1;
  b.interval_duration_us = config_.schedule.duration();
  b.commitment = chain_.commitment();
  b.mac = crypto::compute_mac(master_key, bootstrap_mac_payload(b),
                              config_.mac_size);
  return b;
}

wire::TeslaPacket MuTeslaSender::make_packet(std::uint32_t i,
                                             common::ByteView message) const {
  if (i == 0 || i > chain_.length()) {
    throw std::out_of_range("MuTeslaSender::make_packet: interval");
  }
  wire::TeslaPacket p;
  p.sender = config_.sender_id;
  p.interval = i;
  p.message = common::Bytes(message.begin(), message.end());
  p.mac = crypto::compute_mac(chain_.mac_key(i), message, config_.mac_size);
  return p;
}

std::optional<wire::KeyDisclosure> MuTeslaSender::disclosure(
    std::uint32_t i) const {
  if (i <= config_.disclosure_delay) return std::nullopt;
  const std::uint32_t disclosed = i - config_.disclosure_delay;
  DAP_INVARIANT(disclosed < i,
                "disclosure: disclosed interval must lie strictly in the past");
  wire::KeyDisclosure d;
  d.sender = config_.sender_id;
  d.interval = disclosed;
  d.key = chain_.key(disclosed);
  return d;
}

bool verify_mutesla_bootstrap(const MuTeslaBootstrap& bootstrap,
                              common::ByteView master_key) {
  return crypto::verify_mac(master_key, bootstrap_mac_payload(bootstrap),
                            bootstrap.mac);
}

MuTeslaReceiver::MuTeslaReceiver(const MuTeslaConfig& config,
                                 common::Bytes commitment,
                                 sim::LooseClock clock)
    : config_(config),
      clock_(clock),
      auth_(crypto::PrfDomain::kChainStep, config.key_size,
            std::move(commitment)) {}

std::vector<AuthenticatedMessage> MuTeslaReceiver::drain_ready(
    sim::SimTime local_now) {
  std::vector<AuthenticatedMessage> out;
  auto it = pending_.begin();
  while (it != pending_.end() && it->first <= auth_.anchor_index()) {
    const std::uint32_t interval = it->first;
    const Pending& entry = it->second;
    const auto mac_key = auth_.mac_key(interval);
    if (mac_key && crypto::verify_mac(*mac_key, entry.message, entry.mac)) {
      ++stats_.macs_verified;
      out.push_back(AuthenticatedMessage{interval, entry.message, local_now});
    } else {
      ++stats_.macs_rejected;
    }
    it = pending_.erase(it);
  }
  stats_.buffered_now = pending_.size();
  return out;
}

std::vector<AuthenticatedMessage> MuTeslaReceiver::receive(
    const wire::TeslaPacket& packet, sim::SimTime local_now) {
  DAP_REQUIRE(config_.disclosure_delay > 0,
              "MuTeslaReceiver::receive: disclosure delay must be positive");
  ++stats_.packets_received;
  if (!clock_.packet_safe(packet.interval, config_.disclosure_delay, local_now,
                          config_.schedule)) {
    ++stats_.packets_unsafe;
    return {};
  }
  pending_.emplace(packet.interval, Pending{packet.message, packet.mac});
  ++stats_.packets_buffered;
  stats_.buffered_now = pending_.size();
  return {};
}

std::vector<AuthenticatedMessage> MuTeslaReceiver::receive(
    const wire::KeyDisclosure& packet, sim::SimTime local_now) {
  DAP_REQUIRE(config_.disclosure_delay > 0,
              "MuTeslaReceiver::receive: disclosure delay must be positive");
  ++stats_.packets_received;
  if (auth_.accept(packet.interval, packet.key)) {
    ++stats_.keys_accepted;
  } else {
    ++stats_.keys_rejected;
  }
  return drain_ready(local_now);
}

}  // namespace dap::tesla
