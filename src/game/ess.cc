#include "game/ess.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace dap::game {

const char* ess_kind_name(EssKind kind) noexcept {
  switch (kind) {
    case EssKind::kFullDefenseFullAttack:
      return "(1,1)";
    case EssKind::kFullDefensePartialAttack:
      return "(1,Y')";
    case EssKind::kInterior:
      return "(X*,Y*)";
    case EssKind::kPartialDefenseFullAttack:
      return "(X',1)";
    case EssKind::kNoDefenseFullAttack:
      return "(0,1)";
  }
  return "?";
}

EssCandidates ess_candidates(const GameParams& g) noexcept {
  const double P = g.attack_success();
  const double m = static_cast<double>(g.m);
  const double one_minus_p = 1.0 - P;
  const double denom =
      g.k1 * g.k2 * m * g.xa + one_minus_p * one_minus_p * g.Ra * g.Ra;
  EssCandidates c;
  c.y_at_x1 = P * g.Ra / (g.k1 * g.xa);
  c.x_at_y1 = one_minus_p * g.Ra / (g.k2 * m);
  c.x_interior = one_minus_p * g.Ra * g.Ra / denom;
  c.y_interior = g.k2 * m * g.Ra / denom;
  return c;
}

Ess solve_ess(const GameParams& g) {
  GameParams::validate(g);
  const EssCandidates c = ess_candidates(g);
  Ess out;
  if (c.y_at_x1 >= 1.0) {
    // Attacking saturates even against full defence: P*Ra >= k1*xa.
    // (1,1) is only stable if defending also beats free-riding there,
    // i.e. k2*m <= (1-P)*Ra, which is exactly X'(Y=1) >= 1; otherwise
    // defenders retreat to X' and the ESS is (X', 1).
    if (c.x_at_y1 >= 1.0) {
      out.kind = EssKind::kFullDefenseFullAttack;
      out.point = {1.0, 1.0};
    } else {
      out.kind = EssKind::kPartialDefenseFullAttack;
      out.point = {c.x_at_y1, 1.0};
    }
  } else if (c.x_interior >= 1.0) {
    // Defence saturates (the interior X* lands beyond the simplex) but the
    // attack share settles at Y' < 1.
    out.kind = EssKind::kFullDefensePartialAttack;
    out.point = {1.0, c.y_at_x1};
  } else if (c.y_interior >= 1.0) {
    // Attack saturates; defence is only worthwhile for an X' < 1 share.
    out.kind = EssKind::kPartialDefenseFullAttack;
    out.point = {std::min(c.x_at_y1, 1.0), 1.0};
  } else {
    out.kind = EssKind::kInterior;
    out.point = {c.x_interior, c.y_interior};
  }
  // Whatever the regime, the ESS is a population state: both mixing
  // proportions must land inside the unit simplex.
  DAP_ENSURE(out.point.x >= 0.0 && out.point.x <= 1.0,
             "solve_ess: defender share X outside [0,1]");
  DAP_ENSURE(out.point.y >= 0.0 && out.point.y <= 1.0,
             "solve_ess: attacker share Y outside [0,1]");
  return out;
}

bool verify_ess(const GameParams& g, const Ess& ess, State start,
                double tol) {
  IntegrationOptions options;
  options.method = Integrator::kRk4;
  // Verification tracks the true ODE: edges must not become artificially
  // absorbing when a discrete step overshoots (see Boundary docs).
  options.boundary = Boundary::kInteriorPreserving;
  options.dt = 0.01;
  options.max_steps = 2000000;
  options.convergence_eps = 1e-12;
  options.record_every = 0;

  const auto close = [&](const State& s) {
    return std::abs(s.x - ess.point.x) <= tol &&
           std::abs(s.y - ess.point.y) <= tol;
  };

  // From the nominal start.
  if (!close(integrate(g, start, options).final)) return false;

  // From small perturbations around the fixed point (stability).
  const double eps = 0.02;
  for (const double dx : {-eps, eps}) {
    for (const double dy : {-eps, eps}) {
      State s{std::clamp(ess.point.x + dx, 0.001, 0.999),
              std::clamp(ess.point.y + dy, 0.001, 0.999)};
      if (!close(integrate(g, s, options).final)) return false;
    }
  }
  return true;
}

}  // namespace dap::game
