#pragma once
// Sensitivity of the game's qualitative structure to the evaluation
// constants (paper §VI-B fixes Ra=200, k1=20, k2=4 without derivation).
//
// For a constants triple this module locates the two structural
// thresholds that define Figs. 6-8:
//   * the regime boundaries in m at a reference attack level, and
//   * the critical attack level p_crit beyond which no m <= M reaches an
//     interior ESS (the Fig. 7 "give-up" flip, ~0.94 for the paper's
//     constants).
// The ablation bench sweeps the constants and shows the *ordering* of
// regimes and the existence of a give-up threshold are invariant; only
// the numeric positions move.

#include <cstddef>
#include <optional>
#include <vector>

#include "game/ess.h"
#include "game/optimizer.h"

namespace dap::game {

/// Contiguous run of buffer counts sharing an ESS regime at fixed p.
struct RegimeSpan {
  EssKind kind = EssKind::kInterior;
  std::size_t m_first = 0;
  std::size_t m_last = 0;
};

/// Partition of m = 1..max_m into ESS regimes at attack level p.
std::vector<RegimeSpan> regime_spans(const GameParams& base, double p,
                                     std::size_t max_m);

/// Smallest p (within [lo, hi], to `tolerance`) for which NO m <= max_m
/// yields an interior ESS — the give-up threshold of Fig. 7. Returns
/// nullopt if interior ESSs exist everywhere in the range.
std::optional<double> critical_attack_level(const GameParams& base,
                                            std::size_t max_m = kMaxBuffers,
                                            double lo = 0.5, double hi = 0.999,
                                            double tolerance = 1e-4);

/// True iff the regimes at p appear in the paper's canonical order
/// ((1,1) -> (1,Y') -> interior -> (X',1)), allowing absent spans.
bool canonical_regime_order(const std::vector<RegimeSpan>& spans);

}  // namespace dap::game
