#pragma once
// Parameters of the attack-defence evolutionary game (paper §V, Tables
// I-III).
//
// Populations: defenders play {buffer-selection, no-buffers} with mixing
// proportion X; attackers play {DoS, no-attack} with proportion Y.
// The paper's payoff specialisation:
//   P  = p^m                  (attack success against m buffers)
//   Ld = Ra                   (damage equals the data's value)
//   Ca = k1 * xa * Y          (attack cost grows with attacking share)
//   Cd = k2 * m  * X          (defence cost grows with defending share)
// with p = xa (the attacker's bandwidth fraction IS the forged fraction).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "common/contracts.h"

namespace dap::game {

/// How the attack-success probability P is derived from (p, m).
///
/// kPaperPower is the paper's closed form P = p^m (every one of the m
/// buffered offers must independently be forged). kReservoir matches the
/// repo's actual receiver: Algorithm-R reservoir sampling keeps a uniform
/// m-subset of the F+1 offers, so the single authentic copy survives with
/// probability min(1, m/(F+1)) and the attack succeeds with
/// P = max(0, 1 - m*(1-p)) where p = F/(F+1). Selecting kReservoir makes
/// the offline solver an honest ESS oracle for the simulated fleet.
enum class SuccessModel : std::uint8_t { kPaperPower, kReservoir };

struct GameParams {
  double Ra = 200.0;  // reward of a successful attack (= defender damage Ld)
  double k1 = 20.0;   // attacker cost coefficient
  double k2 = 4.0;    // defender cost coefficient
  double xa = 0.8;    // attacker bandwidth fraction; equals forged fraction p
  std::size_t m = 4;  // defender buffer count
  /// Success-probability model; see SuccessModel. Defaults to the paper's
  /// closed form so existing figures are unchanged.
  SuccessModel success_model = SuccessModel::kPaperPower;

  /// The paper's evaluation constants (§VI-B): Ra=200, k1=20, k2=4.
  [[nodiscard]] static GameParams paper_defaults(double xa, std::size_t m) {
    GameParams g;
    g.xa = xa;
    g.m = m;
    validate(g);
    return g;
  }

  /// Forged-data fraction p (= xa in the paper's model).
  [[nodiscard]] double p() const noexcept { return xa; }

  /// Attack success probability: P = p^m (paper) or the reservoir
  /// displacement probability max(0, 1 - m*(1-p)). Everything downstream
  /// (ess_candidates, solve_ess, replicator_field) consumes P through
  /// this accessor, so the whole solver honors the selected model.
  [[nodiscard]] double attack_success() const noexcept {
    const double P =
        success_model == SuccessModel::kReservoir
            ? std::max(0.0, 1.0 - static_cast<double>(m) * (1.0 - xa))
            : std::pow(xa, static_cast<double>(m));
    // For validated parameters (xa in (0,1)) the success probability is a
    // probability; tolerate out-of-range xa here because validate() owns
    // that rejection.
    DAP_ENSURE(!(xa > 0.0 && xa < 1.0) || (P >= 0.0 && P <= 1.0),
               "attack_success: P escaped [0,1]");
    return P;
  }

  static void validate(const GameParams& g) {
    if (g.Ra <= 0 || g.k1 <= 0 || g.k2 <= 0) {
      throw std::invalid_argument("GameParams: Ra, k1, k2 must be > 0");
    }
    if (g.xa <= 0.0 || g.xa >= 1.0) {
      throw std::invalid_argument("GameParams: xa must be in (0, 1)");
    }
    if (g.m == 0) {
      throw std::invalid_argument("GameParams: m must be >= 1");
    }
    if (g.Ra <= g.k1) {
      // The paper assumes Ra > k1 >= Ca so that attacking is worthwhile.
      throw std::invalid_argument("GameParams: requires Ra > k1");
    }
  }
};

/// Table II instantiated at population state (X, Y). Entries are
/// (defender payoff, attacker payoff).
struct PayoffMatrix {
  // rows: defender {buffer-selection, no-buffers};
  // columns: attacker {DoS, no-attack}.
  double defend_attack_d = 0, defend_attack_a = 0;      // (-Cd - P*Ld, P*Ra - Ca)
  double defend_noattack_d = 0, defend_noattack_a = 0;  // (-Cd, 0)
  double nodefend_attack_d = 0, nodefend_attack_a = 0;  // (-Ld, Ra - Ca)
  double nodefend_noattack_d = 0, nodefend_noattack_a = 0;  // (0, 0)
};

[[nodiscard]] inline PayoffMatrix payoff_matrix(const GameParams& g, double X,
                                                double Y) noexcept {
  const double P = g.attack_success();
  const double Ld = g.Ra;
  const double Ca = g.k1 * g.xa * Y;
  const double Cd = g.k2 * static_cast<double>(g.m) * X;
  PayoffMatrix out;
  out.defend_attack_d = -Cd - P * Ld;
  out.defend_attack_a = P * g.Ra - Ca;
  out.defend_noattack_d = -Cd;
  out.defend_noattack_a = 0.0;
  out.nodefend_attack_d = -Ld;
  out.nodefend_attack_a = g.Ra - Ca;
  out.nodefend_noattack_d = 0.0;
  out.nodefend_noattack_a = 0.0;
  return out;
}

}  // namespace dap::game
