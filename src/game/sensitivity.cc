#include "game/sensitivity.h"

#include <cmath>

#include "common/parallel.h"

namespace dap::game {

std::vector<RegimeSpan> regime_spans(const GameParams& base, double p,
                                     std::size_t max_m) {
  // The per-m ESS solves are independent; the span run-length encoding
  // stays serial over the index-ordered kinds.
  const std::vector<EssKind> kinds =
      common::parallel_map<EssKind>(max_m, [&base, p](std::size_t i) {
        GameParams g = base;
        g.xa = p;
        g.m = i + 1;
        return solve_ess(g).kind;
      });
  std::vector<RegimeSpan> spans;
  for (std::size_t m = 1; m <= max_m; ++m) {
    const EssKind kind = kinds[m - 1];
    if (spans.empty() || spans.back().kind != kind) {
      spans.push_back(RegimeSpan{kind, m, m});
    } else {
      spans.back().m_last = m;
    }
  }
  return spans;
}

namespace {

bool has_interior(const GameParams& base, double p, std::size_t max_m) {
  for (std::size_t m = 1; m <= max_m; ++m) {
    GameParams g = base;
    g.xa = p;
    g.m = m;
    if (solve_ess(g).kind == EssKind::kInterior) return true;
  }
  return false;
}

}  // namespace

std::optional<double> critical_attack_level(const GameParams& base,
                                            std::size_t max_m, double lo,
                                            double hi, double tolerance) {
  if (has_interior(base, hi, max_m)) return std::nullopt;  // never flips
  if (!has_interior(base, lo, max_m)) return lo;           // already flipped
  // Bisection: interior exists at lo, not at hi.
  while (hi - lo > tolerance) {
    const double mid = (lo + hi) / 2;
    if (has_interior(base, mid, max_m)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

bool canonical_regime_order(const std::vector<RegimeSpan>& spans) {
  // Canonical rank along increasing m.
  const auto rank = [](EssKind kind) {
    switch (kind) {
      case EssKind::kFullDefenseFullAttack:
        return 0;
      case EssKind::kFullDefensePartialAttack:
        return 1;
      case EssKind::kInterior:
        return 2;
      case EssKind::kPartialDefenseFullAttack:
        return 3;
      case EssKind::kNoDefenseFullAttack:
        return 4;
    }
    return 5;
  };
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (rank(spans[i].kind) <= rank(spans[i - 1].kind)) return false;
  }
  return true;
}

}  // namespace dap::game
