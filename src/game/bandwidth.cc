#include "game/bandwidth.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace dap::game {

std::size_t buffers_for_memory(std::size_t mem_bits,
                               std::size_t record_bits) {
  if (record_bits == 0) {
    throw std::invalid_argument("buffers_for_memory: record_bits == 0");
  }
  return mem_bits / record_bits;
}

double attacker_bandwidth_required(double P, std::size_t m, double xd) {
  if (P <= 0.0 || P >= 1.0) {
    throw std::invalid_argument("attacker_bandwidth_required: P in (0,1)");
  }
  if (m == 0) {
    throw std::invalid_argument("attacker_bandwidth_required: m >= 1");
  }
  if (xd < 0.0 || xd >= 1.0) {
    throw std::invalid_argument("attacker_bandwidth_required: xd in [0,1)");
  }
  const double p = std::pow(P, 1.0 / static_cast<double>(m));
  return p * (1.0 - xd);
}

double sender_mac_bandwidth_required(double P_def, std::size_t m, double xa) {
  if (P_def < 0.0 || P_def > 1.0) {
    throw std::invalid_argument("sender_mac_bandwidth_required: P_def");
  }
  if (m == 0) {
    throw std::invalid_argument("sender_mac_bandwidth_required: m >= 1");
  }
  if (xa < 0.0 || xa > 1.0) {
    throw std::invalid_argument("sender_mac_bandwidth_required: xa");
  }
  if (P_def == 0.0) return 0.0;
  if (P_def >= 1.0) return std::numeric_limits<double>::infinity();
  // Largest tolerable forged fraction for the target.
  const double p_star = std::pow(1.0 - P_def, 1.0 / static_cast<double>(m));
  if (p_star <= 0.0) return std::numeric_limits<double>::infinity();
  return xa * (1.0 - p_star) / p_star;
}

double defense_success(double p, std::size_t m) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("defense_success: p in [0,1]");
  }
  return 1.0 - std::pow(p, static_cast<double>(m));
}

}  // namespace dap::game
