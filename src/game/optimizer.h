#pragma once
// Buffer-count optimisation (paper §V-F, Algorithm 3) and the defence
// cost model behind Figs. 7 and 8.
//
// Average defender cost at an ESS (X, Y):
//   E(m) = k2·m·X^2 + [1 - (1 - p^m)·X]·Ra·Y
// Naive defence cost (every node defends with the maximum M buffers):
//   N = k2·M + p^M·Ra·Y'(M)          with Y'(M) clamped to [0, 1]
//
// Three optimisation modes:
//   kPaperInterior — the behaviour behind Fig. 7: pick the smallest m
//     whose ESS is *interior* (attacker partially deterred, Y* < 1; cost
//     is increasing in m within the interior regime so smallest is also
//     cheapest). When no m <= M reaches an interior ESS (p beyond ~0.94
//     with the paper's constants), "give up": m = M, ESS (X', 1), where
//     E = Ra exactly.
//   kMinimizeCost — global arg-min of E(m) over 1..M (the principled
//     variant; see EXPERIMENTS.md for how it differs).
//   kFaithfulAlg3 — Algorithm 3 exactly as printed (updates m_opt
//     whenever E_m < E_{m-1}, i.e. records the *last* local improvement),
//     kept for fidelity including its quirk.

#include <cstdint>
#include <vector>

#include "game/ess.h"
#include "game/params.h"

namespace dap::game {

/// Buffer budget from the paper: at most ~50 buffers per node.
inline constexpr std::size_t kMaxBuffers = 50;

/// Defender cost E at the classified ESS for (params.xa, m).
[[nodiscard]] double defense_cost(const GameParams& g);

/// Same but returns the ESS too (avoids recomputation in sweeps).
struct CostAtEss {
  Ess ess;
  double cost = 0.0;
};
[[nodiscard]] CostAtEss defense_cost_at_ess(const GameParams& g);

/// Naive cost N with every node defending at m = M.
[[nodiscard]] double naive_cost(const GameParams& base,
                                std::size_t M = kMaxBuffers);

enum class OptimizeMode : std::uint8_t {
  kPaperInterior,
  kMinimizeCost,
  kFaithfulAlg3,
};

struct OptimizeResult {
  std::size_t m = 0;
  Ess ess;
  double cost = 0.0;
};

/// Chooses the buffer count for attack level `base.xa` (the `m` field of
/// `base` is ignored). See mode docs above.
[[nodiscard]] OptimizeResult optimize_m(const GameParams& base,
                                        OptimizeMode mode,
                                        std::size_t max_m = kMaxBuffers);

/// Full E(m) curve for diagnostics/benches: index i holds cost at m=i+1.
[[nodiscard]] std::vector<CostAtEss> cost_curve(const GameParams& base,
                                                std::size_t max_m);

}  // namespace dap::game
