#include "game/replicator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contracts.h"
#include "obs/scoped_timer.h"
#include "obs/tracer.h"

namespace dap::game {

namespace {
struct IntegrateTelemetry {
  obs::HistogramHandle latency;
  obs::CounterHandle runs;
  obs::CounterHandle steps;
};

// Re-resolved per effective registry so shard overrides (parallel runs)
// never see handles minted against a different registry.
const IntegrateTelemetry& integrate_telemetry() {
  thread_local obs::PerRegistryCache<IntegrateTelemetry> cache;
  return cache.get([](obs::Registry& reg) {
    return IntegrateTelemetry{reg.histogram("game.integrate_us"),
                              reg.counter("game.integrate_runs"),
                              reg.counter("game.integrate_steps")};
  });
}
}  // namespace

Derivative replicator_field(const GameParams& g, double X, double Y) noexcept {
  const double P = g.attack_success();
  const double m = static_cast<double>(g.m);
  Derivative d;
  d.dx = X * (1.0 - X) * (g.Ra * Y * (1.0 - P) - g.k2 * m * X);
  d.dy = Y * (1.0 - Y) * ((P - 1.0) * X * g.Ra + g.Ra - g.k1 * g.xa * Y);
  return d;
}

Jacobian jacobian_at(const GameParams& g, double X, double Y,
                     double h) noexcept {
  const auto fx_p = replicator_field(g, X + h, Y);
  const auto fx_m = replicator_field(g, X - h, Y);
  const auto fy_p = replicator_field(g, X, Y + h);
  const auto fy_m = replicator_field(g, X, Y - h);
  Jacobian j;
  j.a11 = (fx_p.dx - fx_m.dx) / (2.0 * h);
  j.a21 = (fx_p.dy - fx_m.dy) / (2.0 * h);
  j.a12 = (fy_p.dx - fy_m.dx) / (2.0 * h);
  j.a22 = (fy_p.dy - fy_m.dy) / (2.0 * h);
  return j;
}

namespace {

State clamp_simplex(State s, Boundary boundary) noexcept {
  // The continuous replicator never crosses 0 from the interior; the
  // floor keeps a discrete overshoot from making 0 absorbing. The
  // ceiling depends on the mode: the paper's clamp makes the 1-edges
  // absorbing (matching its published regime boundaries); the
  // interior-preserving mode keeps them repelling when unstable.
  constexpr double kFloor = 1e-12;
  const double ceiling =
      boundary == Boundary::kPaperClamp ? 1.0 : 1.0 - kFloor;
  s.x = std::clamp(s.x, kFloor, ceiling);
  s.y = std::clamp(s.y, kFloor, ceiling);
  DAP_ENSURE(s.x >= 0.0 && s.x <= 1.0 && s.y >= 0.0 && s.y <= 1.0,
             "clamp_simplex: population shares must stay in [0,1]");
  return s;
}

State euler_step(const GameParams& g, State s, double dt,
                 Boundary boundary) noexcept {
  const Derivative d = replicator_field(g, s.x, s.y);
  return clamp_simplex({s.x + dt * d.dx, s.y + dt * d.dy}, boundary);
}

State rk4_step(const GameParams& g, State s, double dt,
               Boundary boundary) noexcept {
  const Derivative k1 = replicator_field(g, s.x, s.y);
  const Derivative k2 =
      replicator_field(g, s.x + 0.5 * dt * k1.dx, s.y + 0.5 * dt * k1.dy);
  const Derivative k3 =
      replicator_field(g, s.x + 0.5 * dt * k2.dx, s.y + 0.5 * dt * k2.dy);
  const Derivative k4 =
      replicator_field(g, s.x + dt * k3.dx, s.y + dt * k3.dy);
  return clamp_simplex(
      {s.x + dt / 6.0 * (k1.dx + 2 * k2.dx + 2 * k3.dx + k4.dx),
       s.y + dt / 6.0 * (k1.dy + 2 * k2.dy + 2 * k3.dy + k4.dy)},
      boundary);
}

}  // namespace

Trajectory integrate(const GameParams& g, State start,
                     const IntegrationOptions& options) {
  const IntegrateTelemetry& telemetry = integrate_telemetry();
  auto& reg = obs::Registry::global();
  reg.add(telemetry.runs);
  const obs::ScopedTimer timer(reg, telemetry.latency);
  GameParams::validate(g);
  if (start.x < 0.0 || start.x > 1.0 || start.y < 0.0 || start.y > 1.0) {
    throw std::invalid_argument("integrate: start outside [0,1]^2");
  }
  if (options.dt <= 0.0 || options.max_steps == 0) {
    throw std::invalid_argument("integrate: dt and max_steps must be > 0");
  }

  Trajectory out;
  State s = start;
  out.points.push_back(s);
  for (std::size_t step = 1; step <= options.max_steps; ++step) {
    const State next =
        options.method == Integrator::kEuler
            ? euler_step(g, s, options.dt, options.boundary)
            : rk4_step(g, s, options.dt, options.boundary);
    const double moved =
        std::max(std::abs(next.x - s.x), std::abs(next.y - s.y));
    s = next;
    out.steps = step;
    if (options.record_every != 0 && step % options.record_every == 0) {
      out.points.push_back(s);
      obs::Tracer::global().record(obs::TraceKind::kEssStep, step,
                                   static_cast<std::uint32_t>(step), s.x,
                                   s.y);
    }
    if (moved < options.convergence_eps) {
      out.converged = true;
      break;
    }
  }
  if (out.points.back().x != s.x || out.points.back().y != s.y) {
    out.points.push_back(s);
  }
  out.final = s;
  reg.add(telemetry.steps, out.steps);
  DAP_ENSURE(out.final.x >= 0.0 && out.final.x <= 1.0 && out.final.y >= 0.0 &&
                 out.final.y <= 1.0,
             "integrate: trajectory escaped the unit simplex");
  DAP_ENSURE(!out.points.empty() && out.steps <= options.max_steps,
             "integrate: step accounting is inconsistent");
  return out;
}

}  // namespace dap::game
