#pragma once
// Replicator dynamics of the attack-defence game (paper §V-D):
//
//   dX/dt = X (1-X) [ Ra·Y·(1 - p^m) - k2·m·X ]
//   dY/dt = Y (1-Y) [ (p^m - 1)·X·Ra + Ra - k1·xa·Y ]
//
// Integrators: the paper's forward Euler with dt = 0.01 (used to
// reproduce Fig. 6 exactly) and a classic RK4 for the numerical
// ablation E10. State is clamped to [0, 1]^2 after each step, mirroring
// the paper's "keep 0 < X <= 1" adjustment.

#include <cstddef>
#include <vector>

#include "game/params.h"

namespace dap::game {

struct State {
  double x = 0.0;  // defender buffer-selection share
  double y = 0.0;  // attacker DoS share
};

struct Derivative {
  double dx = 0.0;
  double dy = 0.0;
};

/// The vector field at (X, Y).
[[nodiscard]] Derivative replicator_field(const GameParams& g, double X,
                                          double Y) noexcept;

/// Numerical Jacobian of the field at (X, Y) (central differences),
/// row-major [dFx/dX, dFx/dY; dFy/dX, dFy/dY].
struct Jacobian {
  double a11 = 0, a12 = 0, a21 = 0, a22 = 0;

  [[nodiscard]] double trace() const noexcept { return a11 + a22; }
  [[nodiscard]] double det() const noexcept { return a11 * a22 - a12 * a21; }
  /// Discriminant of the eigenvalue equation; < 0 means complex
  /// eigenvalues (spiral dynamics, as Fig. 6(c) shows).
  [[nodiscard]] double discriminant() const noexcept {
    return trace() * trace() - 4.0 * det();
  }
  /// Both eigenvalue real parts negative -> locally asymptotically stable.
  [[nodiscard]] bool stable() const noexcept {
    return trace() < 0.0 && det() > 0.0;
  }
};

[[nodiscard]] Jacobian jacobian_at(const GameParams& g, double X, double Y,
                                   double h = 1e-6) noexcept;

enum class Integrator { kEuler, kRk4 };

/// How discrete steps that overshoot the simplex edge are handled.
///
/// The exact replicator flow never *reaches* X = 1 or Y = 1 from the
/// interior, but a discrete step with |F|·dt > 1 can overshoot past the
/// edge. Clamping onto the edge makes it absorbing (the off-edge
/// coordinate then slides along it) — this is what the paper's own
/// simulation does ("insure 0 < X <= 1"), and it is what produces the
/// paper's (1,Y') regime up to m = 17 at p = 0.8. kInteriorPreserving
/// instead clamps a hair inside the edge, so trajectories can leave
/// again and the integrator tracks the true ODE attractor.
enum class Boundary : std::uint8_t {
  kPaperClamp,          // clamp to (0, 1]: edges absorbing (paper-faithful)
  kInteriorPreserving,  // clamp to (0, 1): edges repelling when unstable
};

struct IntegrationOptions {
  Integrator method = Integrator::kEuler;
  Boundary boundary = Boundary::kPaperClamp;
  double dt = 0.01;             // the paper's step
  std::size_t max_steps = 200000;
  double convergence_eps = 1e-10;  // |dX| and |dY| per step below this
  /// Record every `record_every`-th point (1 = full trajectory; 0 = only
  /// first and last).
  std::size_t record_every = 1;
};

struct Trajectory {
  std::vector<State> points;   // subsampled per record_every
  State final{};
  bool converged = false;
  std::size_t steps = 0;       // steps actually taken
};

/// Integrates from (x0, y0); throws std::invalid_argument if the start is
/// outside [0,1]^2 or options are degenerate.
Trajectory integrate(const GameParams& g, State start,
                     const IntegrationOptions& options);

}  // namespace dap::game
