#pragma once
// Closed-form ESS candidates and regime classification (paper §V-E).
//
// Setting dX/dt = dY/dt = 0 yields five candidate evolutionary stable
// strategies; which one attracts the dynamics from an interior start
// depends on (p, m) through two clamped quantities:
//
//   Y'(X=1)  = p^m Ra / (k1 xa)                       -- Eq. under case 3
//   X'(Y=1)  = (1 - p^m) Ra / (k2 m)                  -- case 4
//   interior X* = (1-p^m) Ra^2 / D,  Y* = k2 m Ra / D -- case 5
//     with D = k1 k2 m xa + (1-p^m)^2 Ra^2
//
// Classification (derived from the sign structure of the field on the
// unit square, and validated against simulation in tests):
//   1. Y'(X=1) >= 1                    -> ESS (1, 1)
//   2. else if X* >= 1                 -> ESS (1, Y')
//   3. else if Y* >= 1                 -> ESS (X', 1)
//   4. else                            -> interior ESS (X*, Y*)
// ((0,1) is listed by the paper as a candidate but is never the
// attractor for admissible parameters, since Ra > Ca implies dY/dt > 0
// whenever defence is absent; the classifier exposes it for completeness.)

#include <cstdint>

#include "game/params.h"
#include "game/replicator.h"

namespace dap::game {

enum class EssKind : std::uint8_t {
  kFullDefenseFullAttack,     // (1, 1)
  kFullDefensePartialAttack,  // (1, Y')
  kInterior,                  // (X*, Y*) — spiral convergence
  kPartialDefenseFullAttack,  // (X', 1)
  kNoDefenseFullAttack,       // (0, 1) — candidate, unreachable here
};

/// Short display name ("(1,1)", "(1,Y')", ...).
const char* ess_kind_name(EssKind kind) noexcept;

struct Ess {
  EssKind kind = EssKind::kInterior;
  State point{};
};

/// Unclamped candidate values (may exceed 1; used by the classifier and
/// exposed for tests).
struct EssCandidates {
  double y_at_x1 = 0.0;    // Y' = p^m Ra / (k1 xa)
  double x_at_y1 = 0.0;    // X' = (1-p^m) Ra / (k2 m)
  double x_interior = 0.0; // X*
  double y_interior = 0.0; // Y*
};

[[nodiscard]] EssCandidates ess_candidates(const GameParams& g) noexcept;

/// Classifies and returns the attracting ESS for interior starting
/// points (the paper's (0.5, 0.5) scenario).
[[nodiscard]] Ess solve_ess(const GameParams& g);

/// Numerically confirms `ess` by integrating from `start` and from small
/// perturbations around the fixed point; returns true if all runs end
/// within `tol` of the claimed point.
[[nodiscard]] bool verify_ess(const GameParams& g, const Ess& ess,
                              State start = {0.5, 0.5}, double tol = 1e-3);

}  // namespace dap::game
