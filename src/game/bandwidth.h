#pragma once
// Bandwidth/memory models behind the §VI-A evaluation (Fig. 5).
//
// Record sizes (paper, Fig. 4): a TESLA++-style record buffers message +
// MAC = 280 bits; a DAP record buffers μMAC + index = 56 bits. For a
// fixed memory budget `mem` (in the same unit as the record size) the
// node affords m = mem / record buffers.
//
// Fig. 5 model (see DESIGN.md for the interpretation note): with data
// traffic using fraction x_d of the channel, an attacker who wants its
// flood to succeed with probability P against m buffers needs forged
// fraction p = P^(1/m) of the MAC channel, i.e. total bandwidth fraction
//   x_m = P^(1/m) · (1 - x_d).
// The complementary sender-side view (ablation E11): against a flooder
// occupying fraction x_a, to keep defence success >= P_def the sender
// must re-broadcast authentic MAC copies at rate
//   x_m >= x_a · (1 - p*) / p*   with p* = (1 - P_def)^(1/m).

#include <cstddef>

namespace dap::game {

/// Buffers affordable from a memory budget; throws if record_bits == 0.
std::size_t buffers_for_memory(std::size_t mem_bits, std::size_t record_bits);

/// Attacker bandwidth fraction required to reach attack success
/// probability `P` against `m` buffers with data share `xd`.
/// Throws std::invalid_argument unless P in (0,1), m >= 1, xd in [0,1).
double attacker_bandwidth_required(double P, std::size_t m, double xd);

/// Sender MAC-rebroadcast bandwidth needed to hold defence success
/// >= `P_def` against a flooder occupying fraction `xa` of the channel.
/// Returns +inf when the target is unreachable (P_def == 1).
double sender_mac_bandwidth_required(double P_def, std::size_t m, double xa);

/// Defence success probability 1 - p^m.
double defense_success(double p, std::size_t m);

}  // namespace dap::game
