#include "game/optimizer.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/contracts.h"
#include "common/parallel.h"
#include "obs/scoped_timer.h"

namespace dap::game {

namespace {

struct OptimizerTelemetry {
  obs::HistogramHandle optimize_latency;
  obs::CounterHandle ess_solves;
};

// Re-resolved per effective registry so shard overrides (parallel runs)
// never see handles minted against a different registry.
const OptimizerTelemetry& optimizer_telemetry() {
  thread_local obs::PerRegistryCache<OptimizerTelemetry> cache;
  return cache.get([](obs::Registry& reg) {
    return OptimizerTelemetry{reg.histogram("game.optimize_m_us"),
                              reg.counter("game.ess_solves")};
  });
}

double cost_at(const GameParams& g, const Ess& ess) noexcept {
  const double P = g.attack_success();
  const double m = static_cast<double>(g.m);
  const double X = ess.point.x;
  const double Y = ess.point.y;
  return g.k2 * m * X * X + (1.0 - (1.0 - P) * X) * g.Ra * Y;
}

GameParams with_m(GameParams g, std::size_t m) noexcept {
  g.m = m;
  return g;
}

}  // namespace

CostAtEss defense_cost_at_ess(const GameParams& g) {
  obs::Registry::global().add(optimizer_telemetry().ess_solves);
  CostAtEss out;
  out.ess = solve_ess(g);
  out.cost = cost_at(g, out.ess);
  // Cost is k2*m*X^2 + (1 - (1-P)X)*Ra*Y with X, Y, P in [0,1]: every
  // term is non-negative for valid parameters.
  DAP_ENSURE(out.cost >= 0.0, "defense_cost_at_ess: negative defence cost");
  return out;
}

double defense_cost(const GameParams& g) {
  return defense_cost_at_ess(g).cost;
}

double naive_cost(const GameParams& base, std::size_t M) {
  if (M == 0) throw std::invalid_argument("naive_cost: M must be >= 1");
  const GameParams g = with_m(base, M);
  const double P = g.attack_success();
  // With every node defending (X forced to 1), the attacker share settles
  // at Y' = P*Ra/(k1*xa), clamped into the simplex.
  const double y_prime = std::min(1.0, P * g.Ra / (g.k1 * g.xa));
  return g.k2 * static_cast<double>(M) + P * g.Ra * y_prime;
}

std::vector<CostAtEss> cost_curve(const GameParams& base, std::size_t max_m) {
  // Each m's ESS solve is independent and deterministic, so the curve
  // parallelizes by index with output identical to the serial loop.
  return common::parallel_map<CostAtEss>(max_m, [&base](std::size_t i) {
    return defense_cost_at_ess(with_m(base, i + 1));
  });
}

OptimizeResult optimize_m(const GameParams& base, OptimizeMode mode,
                          std::size_t max_m) {
  const obs::ScopedTimer timer(optimizer_telemetry().optimize_latency);
  if (max_m == 0) throw std::invalid_argument("optimize_m: max_m must be >= 1");
  const std::vector<CostAtEss> curve = cost_curve(base, max_m);

  OptimizeResult result;
  switch (mode) {
    case OptimizeMode::kPaperInterior: {
      for (std::size_t m = 1; m <= max_m; ++m) {
        if (curve[m - 1].ess.kind == EssKind::kInterior) {
          result.m = m;
          result.ess = curve[m - 1].ess;
          result.cost = curve[m - 1].cost;
          return result;
        }
      }
      // No interior ESS reachable: give up — max out the buffers, ESS
      // becomes (X', 1) and the cost saturates at Ra.
      result.m = max_m;
      result.ess = curve[max_m - 1].ess;
      result.cost = curve[max_m - 1].cost;
      return result;
    }
    case OptimizeMode::kMinimizeCost: {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t m = 1; m <= max_m; ++m) {
        if (curve[m - 1].cost < best) {
          best = curve[m - 1].cost;
          result.m = m;
          result.ess = curve[m - 1].ess;
          result.cost = curve[m - 1].cost;
        }
      }
      return result;
    }
    case OptimizeMode::kFaithfulAlg3: {
      // Algorithm 3 verbatim: m_opt takes the last m whose cost improved
      // on its predecessor (E_0 = infinity, so m = 1 always qualifies).
      double previous = std::numeric_limits<double>::infinity();
      std::size_t m_opt = 0;
      for (std::size_t m = 1; m <= max_m; ++m) {
        if (curve[m - 1].cost < previous) {
          m_opt = m;
        }
        previous = curve[m - 1].cost;
      }
      result.m = m_opt == 0 ? 1 : m_opt;
      result.ess = curve[result.m - 1].ess;
      result.cost = curve[result.m - 1].cost;
      DAP_ENSURE(result.m >= 1 && result.m <= max_m,
                 "optimize_m: chosen m outside [1, max_m]");
      return result;
    }
  }
  throw std::logic_error("optimize_m: unknown mode");
}

}  // namespace dap::game
