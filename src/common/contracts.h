#pragma once
// Design-by-contract macros for the protocol state machines.
//
// Three kinds, all checking a boolean condition:
//   DAP_REQUIRE(cond, msg)    — precondition at a function entry
//   DAP_ENSURE(cond, msg)     — postcondition before a return
//   DAP_INVARIANT(cond, msg)  — internal consistency mid-function
//
// The distinction is purely diagnostic (the violation report names the
// kind); all three compile identically. Contracts are for conditions that
// are *always* true unless the library itself has a bug — attacker-
// reachable and caller-reachable error paths keep their existing
// exception/optional-based handling and must never be converted to
// contracts, because a contract violation terminates the process.
//
// Compiled-in levels, selected by the DAP_CONTRACTS CMake option
// (which defines DAP_CONTRACTS_LEVEL):
//   0 (OFF)    — macros expand to nothing; conditions are not evaluated.
//   1 (ASSERT) — violations abort with a one-line report (like assert,
//                but independent of NDEBUG).
//   2 (FATAL / ON) — violations print kind, expression, message, and
//                source location to stderr, then abort. Default for
//                sanitizer and CI builds.
//
// Conditions must be side-effect free: level 0 does not evaluate them.

#include <cstdio>
#include <cstdlib>

#ifndef DAP_CONTRACTS_LEVEL
#define DAP_CONTRACTS_LEVEL 1
#endif

namespace dap::common::detail {

[[noreturn]] inline void contract_violation(const char* kind,
                                            const char* expression,
                                            const char* message,
                                            const char* file, long line,
                                            const char* function) noexcept {
#if DAP_CONTRACTS_LEVEL >= 2
  std::fprintf(stderr,
               "[dap] contract violation: %s failed\n"
               "  expression: %s\n"
               "  message:    %s\n"
               "  location:   %s:%ld in %s\n",
               kind, expression, message, file, line, function);
#else
  std::fprintf(stderr, "[dap] %s failed: %s (%s:%ld)\n", kind, expression,
               file, line);
  (void)message;
  (void)function;
#endif
  std::fflush(stderr);
  std::abort();
}

}  // namespace dap::common::detail

#if DAP_CONTRACTS_LEVEL >= 1
#define DAP_CONTRACT_CHECK_(kind, cond, msg)                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::dap::common::detail::contract_violation(kind, #cond, msg,          \
                                                __FILE__, __LINE__,        \
                                                static_cast<const char*>(  \
                                                    __func__));            \
    }                                                                      \
  } while (false)
#else
#define DAP_CONTRACT_CHECK_(kind, cond, msg) \
  do {                                       \
  } while (false)
#endif

#define DAP_REQUIRE(cond, msg) DAP_CONTRACT_CHECK_("DAP_REQUIRE", cond, msg)
#define DAP_ENSURE(cond, msg) DAP_CONTRACT_CHECK_("DAP_ENSURE", cond, msg)
#define DAP_INVARIANT(cond, msg) DAP_CONTRACT_CHECK_("DAP_INVARIANT", cond, msg)
