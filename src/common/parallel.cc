#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "common/contracts.h"
#include "common/rng.h"
#include "common/sync.h"

namespace dap::common {

namespace {

/// Hard cap on pool size: oversubscribing beyond this is never useful
/// and bounds the resources a bad --threads value can claim.
constexpr std::size_t kMaxThreads = 256;

// The hooks and the thread-count override are process-wide configuration
// for the parallel engine itself. The hooks are written by obs's static
// initializer and read once per parallel_for (snapshotted into the job),
// both under g_hooks_mu; the override is a plain atomic.
Mutex g_hooks_mu;                               // lint: allow(global-state): engine-wide config lock
ShardHooks g_hooks DAP_GUARDED_BY(g_hooks_mu);  // lint: allow(global-state): guarded engine config
std::atomic<std::size_t> g_thread_override{0};  // lint: allow(global-state): atomic engine config

thread_local bool tls_in_parallel_region = false;

struct Chunk {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// One parallel_for invocation: the chunk list, one deque of chunk ids
/// per participant (work-stealing victims), and the join bookkeeping.
///
/// Sharing discipline, field by field: `body`, `chunks`, `hooks`, and
/// the `queues` vector itself are filled in by parallel_for BEFORE the
/// job is published to the pool and never written afterwards; `shards`
/// slots are written by exactly one executor each (index-addressed by
/// chunk id) and only read after the join; the join counters are
/// atomics; everything else is guarded by the mutex named in its
/// annotation.
struct Job {
  const std::function<void(std::size_t)>* body =  // lint: allow(guarded-fields): immutable once published
      nullptr;
  std::vector<Chunk> chunks;   // lint: allow(guarded-fields): immutable once published
  ShardHooks hooks;            // lint: allow(guarded-fields): immutable once published
  std::vector<void*> shards;   // lint: allow(guarded-fields): one writer per index-addressed slot

  struct Queue {
    Mutex mu;
    std::deque<std::size_t> chunk_ids DAP_GUARDED_BY(mu);
  };
  std::vector<std::unique_ptr<Queue>> queues;  // lint: allow(guarded-fields): vector immutable once published

  std::atomic<std::size_t> unfinished_chunks{0};
  std::atomic<std::size_t> active_workers{0};
  std::atomic<bool> failed{false};
  Mutex error_mu;
  std::exception_ptr error DAP_GUARDED_BY(error_mu);

  Mutex join_mu;
  CondVar join_cv;

  void note_failure(std::exception_ptr err) {
    {
      const LockGuard lock(error_mu);
      if (error == nullptr) error = std::move(err);
    }
    failed.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] std::exception_ptr take_error() {
    const LockGuard lock(error_mu);
    return std::exchange(error, nullptr);
  }

  void note_chunk_done() {
    // Decrementing outside join_mu is safe here (unlike in
    // note_worker_exit): a pool worker running this still holds its
    // active_workers slot, so run() cannot pass its final wait — and
    // destroy the job — until the worker reaches note_worker_exit; the
    // caller's own chunks run on the thread that later destroys the job.
    if (unfinished_chunks.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const LockGuard lock(join_mu);
      join_cv.notify_all();
    }
  }
  void note_worker_exit() {
    // The decrement MUST happen under join_mu: run()'s final wait
    // destroys the job (join_mu and join_cv included) as soon as its
    // predicate sees active_workers == 0, so dropping the count before
    // taking the lock would let a spuriously-waking caller free the
    // condvar this thread is about to lock and notify.
    const LockGuard lock(join_mu);
    active_workers.fetch_sub(1, std::memory_order_acq_rel);
    join_cv.notify_all();
  }
};

/// Unbinds the shard even when the body throws.
class ShardActivation {
 public:
  ShardActivation(const ShardHooks& hooks, void* shard)
      : hooks_(hooks), shard_(shard) {
    if (shard_ != nullptr && hooks_.activate != nullptr) {
      hooks_.activate(shard_);
    }
    tls_in_parallel_region = true;
  }
  ShardActivation(const ShardActivation&) = delete;
  ShardActivation& operator=(const ShardActivation&) = delete;
  ~ShardActivation() {
    tls_in_parallel_region = false;
    if (shard_ != nullptr && hooks_.deactivate != nullptr) {
      hooks_.deactivate(shard_);
    }
  }

 private:
  const ShardHooks& hooks_;
  void* shard_;
};

void execute_chunk(Job& job, std::size_t chunk_id) {
  void* shard = job.hooks.create != nullptr ? job.hooks.create() : nullptr;
  job.shards[chunk_id] = shard;
  {
    const ShardActivation activation(job.hooks, shard);
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        const Chunk& chunk = job.chunks[chunk_id];
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          (*job.body)(i);
        }
      } catch (...) {
        job.note_failure(std::current_exception());
      }
    }
  }
  job.note_chunk_done();
}

/// Drains the job's queues as participant `self`: own deque from the
/// front, then steal from the back of the other participants' deques.
void participate(Job& job, std::size_t self) {
  const std::size_t participants = job.queues.size();
  for (;;) {
    std::size_t chunk_id = 0;
    bool found = false;
    {
      Job::Queue& own = *job.queues[self];
      const LockGuard lock(own.mu);
      if (!own.chunk_ids.empty()) {
        chunk_id = own.chunk_ids.front();
        own.chunk_ids.pop_front();
        found = true;
      }
    }
    for (std::size_t offset = 1; !found && offset < participants; ++offset) {
      Job::Queue& victim = *job.queues[(self + offset) % participants];
      const LockGuard lock(victim.mu);
      if (!victim.chunk_ids.empty()) {
        chunk_id = victim.chunk_ids.back();
        victim.chunk_ids.pop_back();
        found = true;
      }
    }
    if (!found) return;
    execute_chunk(job, chunk_id);
  }
}

/// Lazily grown pool of sleeping workers. A parallel_for publishes its
/// job with a claim budget; each woken worker claims a participant slot,
/// drains the job, and goes back to sleep. Workers persist across calls.
class WorkStealingPool {
 public:
  static WorkStealingPool& instance() {
    // The pool is the engine's own machinery, torn down at process exit.
    static WorkStealingPool pool;  // lint: allow(global-state): process-wide worker pool
    return pool;
  }

  /// Runs `job` with `threads` participants (the caller is participant
  /// 0). Returns after every chunk completed AND every claimed worker
  /// left the job, so `job` can live on the caller's stack.
  void run(Job& job, std::size_t threads) {
    ensure_workers(threads - 1);
    {
      const LockGuard lock(mu_);
      ++generation_;
      current_job_ = &job;
      claims_available_ = threads - 1;
      next_slot_ = 1;
    }
    cv_.notify_all();
    participate(job, 0);
    {
      UniqueLock lock(job.join_mu);
      while (job.unfinished_chunks.load(std::memory_order_acquire) != 0) {
        job.join_cv.wait(lock);
      }
    }
    // Close the claim window BEFORE waiting for workers to leave. Claims
    // happen under mu_ (including the active_workers increment), so once
    // current_job_ is cleared here no late-waking worker can attach to
    // this job, and active_workers already counts every claim that did —
    // the wait below therefore covers all of them. Waiting on the
    // combined predicate first instead would let a worker claim after
    // the caller observed active_workers == 0, touching the
    // stack-allocated job after run() returned.
    {
      const LockGuard lock(mu_);
      current_job_ = nullptr;
      claims_available_ = 0;
    }
    {
      UniqueLock lock(job.join_mu);
      while (job.active_workers.load(std::memory_order_acquire) != 0) {
        job.join_cv.wait(lock);
      }
    }
  }

 private:
  WorkStealingPool() = default;
  ~WorkStealingPool() {
    std::vector<std::thread> workers;
    {
      const LockGuard lock(mu_);
      stop_ = true;
      workers.swap(workers_);
    }
    cv_.notify_all();
    for (std::thread& worker : workers) worker.join();
  }

  void ensure_workers(std::size_t wanted) {
    const LockGuard lock(mu_);
    while (workers_.size() < wanted && workers_.size() < kMaxThreads - 1) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    std::uint64_t last_generation = 0;
    for (;;) {
      Job* job = nullptr;
      std::size_t slot = 0;
      {
        UniqueLock lock(mu_);
        while (!(stop_ || (current_job_ != nullptr && claims_available_ > 0 &&
                           generation_ != last_generation))) {
          cv_.wait(lock);
        }
        if (stop_) return;
        last_generation = generation_;
        --claims_available_;
        slot = next_slot_++;
        job = current_job_;
        job->active_workers.fetch_add(1, std::memory_order_acq_rel);
      }
      participate(*job, slot);
      job->note_worker_exit();
    }
  }

  Mutex mu_;
  CondVar cv_;
  std::vector<std::thread> workers_ DAP_GUARDED_BY(mu_);
  Job* current_job_ DAP_GUARDED_BY(mu_) = nullptr;
  std::size_t claims_available_ DAP_GUARDED_BY(mu_) = 0;
  std::size_t next_slot_ DAP_GUARDED_BY(mu_) = 1;
  std::uint64_t generation_ DAP_GUARDED_BY(mu_) = 0;
  bool stop_ DAP_GUARDED_BY(mu_) = false;
};

void run_serial(std::size_t n, const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < n; ++i) body(i);
}

}  // namespace

std::size_t hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t default_threads() noexcept {
  const std::size_t override_threads =
      g_thread_override.load(std::memory_order_relaxed);
  if (override_threads != 0) return override_threads;
  if (const char* env = std::getenv("DAP_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1 && parsed <= kMaxThreads) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return hardware_threads();
}

void set_default_threads(std::size_t n) noexcept {
  g_thread_override.store(n > kMaxThreads ? kMaxThreads : n,
                          std::memory_order_relaxed);
}

std::uint64_t subseed(std::uint64_t base_seed, std::uint64_t index) noexcept {
  // One extra SplitMix64 round over (base ^ mixed-index) — the same
  // golden-ratio increment Rng::fork uses, but stateless, so shard seeds
  // never depend on fork order.
  std::uint64_t state =
      base_seed ^ ((index + 1) * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

bool in_parallel_region() noexcept { return tls_in_parallel_region; }

void set_shard_hooks(const ShardHooks& hooks) noexcept {
  const LockGuard lock(g_hooks_mu);
  g_hooks = hooks;
}

ShardHooks shard_hooks() noexcept {
  const LockGuard lock(g_hooks_mu);
  return g_hooks;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  const ParallelOptions& options) {
  if (n == 0) return;
  std::size_t threads =
      options.threads != 0 ? options.threads : default_threads();
  if (threads > kMaxThreads) threads = kMaxThreads;
  if (threads > n) threads = n;
  // Inside a parallel region the telemetry shard for the outer chunk is
  // already bound; running inline keeps the shard accounting (and the
  // serial-equivalence argument) simple.
  if (threads <= 1 || in_parallel_region()) {
    run_serial(n, body);
    return;
  }

  // Several chunks per participant so stealing can rebalance uneven
  // per-item cost; chunk boundaries depend only on (n, threads, grain).
  std::size_t grain = options.grain;
  if (grain == 0) {
    const std::size_t target_chunks = threads * 4;
    grain = (n + target_chunks - 1) / target_chunks;
    if (grain == 0) grain = 1;
  }
  const std::size_t chunk_count = (n + grain - 1) / grain;

  Job job;
  job.body = &body;
  job.hooks = shard_hooks();
  job.chunks.reserve(chunk_count);
  for (std::size_t begin = 0; begin < n; begin += grain) {
    job.chunks.push_back(Chunk{begin, begin + grain < n ? begin + grain : n});
  }
  DAP_INVARIANT(job.chunks.size() == chunk_count,
                "parallel_for: chunk layout must match the computed count");
  job.shards.assign(job.chunks.size(), nullptr);
  job.unfinished_chunks.store(job.chunks.size(), std::memory_order_relaxed);
  job.queues.reserve(threads);
  for (std::size_t q = 0; q < threads; ++q) {
    job.queues.push_back(std::make_unique<Job::Queue>());
  }
  // Round-robin initial placement; stealing corrects any imbalance. The
  // queues are not shared until run() publishes the job, but the
  // analysis has no "pre-publication" notion — taking the (uncontended)
  // lock here keeps the invariant checkable instead of suppressed.
  for (std::size_t chunk_id = 0; chunk_id < job.chunks.size(); ++chunk_id) {
    Job::Queue& queue = *job.queues[chunk_id % threads];
    const LockGuard lock(queue.mu);
    queue.chunk_ids.push_back(chunk_id);
  }

  WorkStealingPool::instance().run(job, threads);

  // Merge shards on the calling thread in chunk order: fixed order makes
  // the merged registry reproducible for a fixed configuration.
  for (void* shard : job.shards) {
    if (shard == nullptr) continue;
    if (job.hooks.merge != nullptr) job.hooks.merge(shard);
    if (job.hooks.destroy != nullptr) job.hooks.destroy(shard);
  }
  if (std::exception_ptr error = job.take_error()) {
    std::rethrow_exception(error);
  }
}

}  // namespace dap::common
