#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/contracts.h"
#include "common/rng.h"

namespace dap::common {

namespace {

// The hooks and the thread-count override are process-wide configuration
// for the parallel engine itself; they are written before any pool work
// starts and read-only while chunks run.
ShardHooks g_hooks{};                       // dap-lint: allow(global-state)
std::atomic<std::size_t> g_thread_override{0};  // dap-lint: allow(global-state)

thread_local bool tls_in_parallel_region = false;

/// Hard cap on pool size: oversubscribing beyond this is never useful
/// and bounds the resources a bad --threads value can claim.
constexpr std::size_t kMaxThreads = 256;

struct Chunk {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// One parallel_for invocation: the chunk list, one deque of chunk ids
/// per participant (work-stealing victims), and the join bookkeeping.
struct Job {
  const std::function<void(std::size_t)>* body = nullptr;
  std::vector<Chunk> chunks;
  std::vector<void*> shards;  // slot per chunk, merged in index order

  struct Queue {
    std::mutex mu;
    std::deque<std::size_t> chunk_ids;
  };
  std::vector<std::unique_ptr<Queue>> queues;

  std::atomic<std::size_t> unfinished_chunks{0};
  std::atomic<std::size_t> active_workers{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;

  std::mutex join_mu;
  std::condition_variable join_cv;

  void note_chunk_done() {
    // Decrementing outside join_mu is safe here (unlike in
    // note_worker_exit): a pool worker running this still holds its
    // active_workers slot, so run() cannot pass its final wait — and
    // destroy the job — until the worker reaches note_worker_exit; the
    // caller's own chunks run on the thread that later destroys the job.
    if (unfinished_chunks.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard<std::mutex> lock(join_mu);
      join_cv.notify_all();
    }
  }
  void note_worker_exit() {
    // The decrement MUST happen under join_mu: run()'s final wait
    // destroys the job (join_mu and join_cv included) as soon as its
    // predicate sees active_workers == 0, so dropping the count before
    // taking the lock would let a spuriously-waking caller free the
    // condvar this thread is about to lock and notify.
    const std::lock_guard<std::mutex> lock(join_mu);
    active_workers.fetch_sub(1, std::memory_order_acq_rel);
    join_cv.notify_all();
  }
};

/// Unbinds the shard even when the body throws.
class ShardActivation {
 public:
  explicit ShardActivation(void* shard) : shard_(shard) {
    if (shard_ != nullptr && g_hooks.activate != nullptr) {
      g_hooks.activate(shard_);
    }
    tls_in_parallel_region = true;
  }
  ShardActivation(const ShardActivation&) = delete;
  ShardActivation& operator=(const ShardActivation&) = delete;
  ~ShardActivation() {
    tls_in_parallel_region = false;
    if (shard_ != nullptr && g_hooks.deactivate != nullptr) {
      g_hooks.deactivate(shard_);
    }
  }

 private:
  void* shard_;
};

void execute_chunk(Job& job, std::size_t chunk_id) {
  void* shard = g_hooks.create != nullptr ? g_hooks.create() : nullptr;
  job.shards[chunk_id] = shard;
  {
    const ShardActivation activation(shard);
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        const Chunk& chunk = job.chunks[chunk_id];
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          (*job.body)(i);
        }
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(job.error_mu);
          if (job.error == nullptr) job.error = std::current_exception();
        }
        job.failed.store(true, std::memory_order_relaxed);
      }
    }
  }
  job.note_chunk_done();
}

/// Drains the job's queues as participant `self`: own deque from the
/// front, then steal from the back of the other participants' deques.
void participate(Job& job, std::size_t self) {
  const std::size_t participants = job.queues.size();
  for (;;) {
    std::size_t chunk_id = 0;
    bool found = false;
    {
      Job::Queue& own = *job.queues[self];
      const std::lock_guard<std::mutex> lock(own.mu);
      if (!own.chunk_ids.empty()) {
        chunk_id = own.chunk_ids.front();
        own.chunk_ids.pop_front();
        found = true;
      }
    }
    for (std::size_t offset = 1; !found && offset < participants; ++offset) {
      Job::Queue& victim = *job.queues[(self + offset) % participants];
      const std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.chunk_ids.empty()) {
        chunk_id = victim.chunk_ids.back();
        victim.chunk_ids.pop_back();
        found = true;
      }
    }
    if (!found) return;
    execute_chunk(job, chunk_id);
  }
}

/// Lazily grown pool of sleeping workers. A parallel_for publishes its
/// job with a claim budget; each woken worker claims a participant slot,
/// drains the job, and goes back to sleep. Workers persist across calls.
class WorkStealingPool {
 public:
  static WorkStealingPool& instance() {
    // The pool is the engine's own machinery, torn down at process exit.
    static WorkStealingPool pool;  // dap-lint: allow(global-state)
    return pool;
  }

  /// Runs `job` with `threads` participants (the caller is participant
  /// 0). Returns after every chunk completed AND every claimed worker
  /// left the job, so `job` can live on the caller's stack.
  void run(Job& job, std::size_t threads) {
    ensure_workers(threads - 1);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++generation_;
      current_job_ = &job;
      claims_available_ = threads - 1;
      next_slot_ = 1;
    }
    cv_.notify_all();
    participate(job, 0);
    {
      std::unique_lock<std::mutex> lock(job.join_mu);
      job.join_cv.wait(lock, [&job] {
        return job.unfinished_chunks.load(std::memory_order_acquire) == 0;
      });
    }
    // Close the claim window BEFORE waiting for workers to leave. Claims
    // happen under mu_ (including the active_workers increment), so once
    // current_job_ is cleared here no late-waking worker can attach to
    // this job, and active_workers already counts every claim that did —
    // the wait below therefore covers all of them. Waiting on the
    // combined predicate first instead would let a worker claim after
    // the caller observed active_workers == 0, touching the
    // stack-allocated job after run() returned.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      current_job_ = nullptr;
      claims_available_ = 0;
    }
    {
      std::unique_lock<std::mutex> lock(job.join_mu);
      job.join_cv.wait(lock, [&job] {
        return job.active_workers.load(std::memory_order_acquire) == 0;
      });
    }
  }

 private:
  WorkStealingPool() = default;
  ~WorkStealingPool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  void ensure_workers(std::size_t wanted) {
    const std::lock_guard<std::mutex> lock(mu_);
    while (workers_.size() < wanted && workers_.size() < kMaxThreads - 1) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    std::uint64_t last_generation = 0;
    for (;;) {
      Job* job = nullptr;
      std::size_t slot = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this, last_generation] {
          return stop_ || (current_job_ != nullptr && claims_available_ > 0 &&
                           generation_ != last_generation);
        });
        if (stop_) return;
        last_generation = generation_;
        --claims_available_;
        slot = next_slot_++;
        job = current_job_;
        job->active_workers.fetch_add(1, std::memory_order_acq_rel);
      }
      participate(*job, slot);
      job->note_worker_exit();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  Job* current_job_ = nullptr;
  std::size_t claims_available_ = 0;
  std::size_t next_slot_ = 1;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

void run_serial(std::size_t n, const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < n; ++i) body(i);
}

}  // namespace

std::size_t hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t default_threads() noexcept {
  const std::size_t override_threads =
      g_thread_override.load(std::memory_order_relaxed);
  if (override_threads != 0) return override_threads;
  if (const char* env = std::getenv("DAP_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1 && parsed <= kMaxThreads) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return hardware_threads();
}

void set_default_threads(std::size_t n) noexcept {
  g_thread_override.store(n > kMaxThreads ? kMaxThreads : n,
                          std::memory_order_relaxed);
}

std::uint64_t subseed(std::uint64_t base_seed, std::uint64_t index) noexcept {
  // One extra SplitMix64 round over (base ^ mixed-index) — the same
  // golden-ratio increment Rng::fork uses, but stateless, so shard seeds
  // never depend on fork order.
  std::uint64_t state =
      base_seed ^ ((index + 1) * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

bool in_parallel_region() noexcept { return tls_in_parallel_region; }

void set_shard_hooks(const ShardHooks& hooks) noexcept { g_hooks = hooks; }

const ShardHooks& shard_hooks() noexcept { return g_hooks; }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  const ParallelOptions& options) {
  if (n == 0) return;
  std::size_t threads =
      options.threads != 0 ? options.threads : default_threads();
  if (threads > kMaxThreads) threads = kMaxThreads;
  if (threads > n) threads = n;
  // Inside a parallel region the telemetry shard for the outer chunk is
  // already bound; running inline keeps the shard accounting (and the
  // serial-equivalence argument) simple.
  if (threads <= 1 || in_parallel_region()) {
    run_serial(n, body);
    return;
  }

  // Several chunks per participant so stealing can rebalance uneven
  // per-item cost; chunk boundaries depend only on (n, threads, grain).
  std::size_t grain = options.grain;
  if (grain == 0) {
    const std::size_t target_chunks = threads * 4;
    grain = (n + target_chunks - 1) / target_chunks;
    if (grain == 0) grain = 1;
  }
  const std::size_t chunk_count = (n + grain - 1) / grain;

  Job job;
  job.body = &body;
  job.chunks.reserve(chunk_count);
  for (std::size_t begin = 0; begin < n; begin += grain) {
    job.chunks.push_back(Chunk{begin, begin + grain < n ? begin + grain : n});
  }
  DAP_INVARIANT(job.chunks.size() == chunk_count,
                "parallel_for: chunk layout must match the computed count");
  job.shards.assign(job.chunks.size(), nullptr);
  job.unfinished_chunks.store(job.chunks.size(), std::memory_order_relaxed);
  job.queues.reserve(threads);
  for (std::size_t q = 0; q < threads; ++q) {
    job.queues.push_back(std::make_unique<Job::Queue>());
  }
  // Round-robin initial placement; stealing corrects any imbalance.
  for (std::size_t chunk_id = 0; chunk_id < job.chunks.size(); ++chunk_id) {
    job.queues[chunk_id % threads]->chunk_ids.push_back(chunk_id);
  }

  WorkStealingPool::instance().run(job, threads);

  // Merge shards on the calling thread in chunk order: fixed order makes
  // the merged registry reproducible for a fixed configuration.
  for (void* shard : job.shards) {
    if (shard == nullptr) continue;
    if (g_hooks.merge != nullptr) g_hooks.merge(shard);
    if (g_hooks.destroy != nullptr) g_hooks.destroy(shard);
  }
  if (job.error != nullptr) std::rethrow_exception(job.error);
}

}  // namespace dap::common
