#pragma once
// Annotated synchronization primitives.
//
// Thin wrappers over <mutex>/<condition_variable> that carry Clang's
// thread-safety capability attributes, so the locking discipline of the
// parallel engine (and any future shared state) is checked at compile
// time: a clang build with `-Wthread-safety -Werror=thread-safety`
// (CMake option DAP_THREAD_SAFETY, CI job `static-analysis`) fails when
// a `DAP_GUARDED_BY(mu)` field is touched without `mu` held, when a
// function annotated `DAP_REQUIRES(mu)` is called without it, or when a
// lock is leaked. On GCC (which has no thread-safety analysis) every
// macro expands to nothing and the wrappers compile to the underlying
// std types with zero overhead.
//
// Conventions enforced by the analysis (and mirrored structurally by
// the dap_lint `guarded-fields` rule, which runs on every toolchain):
//   - every mutable field protected by a Mutex is annotated
//     DAP_GUARDED_BY(that_mutex); fields that are intentionally
//     unguarded (atomics, publish-once state) say so where they are
//     declared;
//   - condition-variable waits are written as explicit `while` loops
//     around `CondVar::wait(lock)` — the predicate then runs in a scope
//     where the analysis knows the lock is held, which a
//     `wait(lock, pred)` lambda would not be;
//   - functions that run entirely under a caller-held lock are
//     annotated DAP_REQUIRES(mu) instead of re-locking.

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define DAP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DAP_THREAD_ANNOTATION(x)  // no-op: GCC has no thread-safety analysis
#endif

/// Declares a type to be a lockable capability ("mutex" in diagnostics).
#define DAP_CAPABILITY(x) DAP_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define DAP_SCOPED_CAPABILITY DAP_THREAD_ANNOTATION(scoped_lockable)
/// Field annotation: reads and writes require holding `x`.
#define DAP_GUARDED_BY(x) DAP_THREAD_ANNOTATION(guarded_by(x))
/// Pointer-field annotation: the pointee is protected by `x`.
#define DAP_PT_GUARDED_BY(x) DAP_THREAD_ANNOTATION(pt_guarded_by(x))
/// The function must be called with the listed capabilities held.
#define DAP_REQUIRES(...) \
  DAP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// The function acquires the listed capabilities (and does not release
/// them before returning).
#define DAP_ACQUIRE(...) DAP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// The function releases the listed capabilities.
#define DAP_RELEASE(...) DAP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// The function acquires the capability iff it returns `result`.
#define DAP_TRY_ACQUIRE(result, ...) \
  DAP_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))
/// The function must NOT be called with the listed capabilities held
/// (deadlock prevention for self-locking functions).
#define DAP_EXCLUDES(...) DAP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Returns a reference to the named capability (getter annotation).
#define DAP_RETURN_CAPABILITY(x) DAP_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: disables the analysis for one function. Every use must
/// explain why in an adjacent comment.
#define DAP_NO_THREAD_SAFETY_ANALYSIS \
  DAP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dap::common {

/// std::mutex carrying the "mutex" capability. Prefer LockGuard /
/// UniqueLock over calling lock()/unlock() directly.
class DAP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DAP_ACQUIRE() { mu_.lock(); }
  void unlock() DAP_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() DAP_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  std::mutex mu_;
};

/// RAII scoped lock over a Mutex (std::lock_guard shape: no unlock
/// before destruction).
class DAP_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) DAP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() DAP_RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// RAII lock that a CondVar can release and re-acquire while waiting
/// (std::unique_lock shape). Satisfies BasicLockable, which is what
/// std::condition_variable_any needs; always owns the mutex outside a
/// wait, so there is no owns_lock() state to track.
class DAP_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) DAP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~UniqueLock() DAP_RELEASE() { mu_.unlock(); }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  // BasicLockable surface for std::condition_variable_any. Only CondVar
  // calls these (inside wait), where the analysis treats the capability
  // as continuously held — which is exactly the caller-visible contract.
  void lock() DAP_ACQUIRE() { mu_.lock(); }
  void unlock() DAP_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex/UniqueLock. Waits must be
/// wrapped in an explicit `while (!predicate) cv.wait(lock);` loop — see
/// the header comment for why.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // The spurious-wakeup loop lives at every call site (the analysis
  // needs the predicate re-checked under the held capability there).
  // NOLINTNEXTLINE(cert-con54-cpp)
  void wait(UniqueLock& lock) { cv_.wait(lock); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace dap::common
