#include "common/csv.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dap::common {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : path_(path), out_(path), columns_(columns.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  if (columns.empty()) {
    throw std::invalid_argument("CsvWriter: need at least one column");
  }
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
  if (values.size() != columns_) {
    throw std::invalid_argument("CsvWriter::row: arity mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << format_number(values[i]);
  }
  out_ << '\n';
  flush();
}

void CsvWriter::row_text(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter::row_text: arity mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  flush();
}

void CsvWriter::flush() {
  out_.flush();
}

std::string format_number(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace dap::common
