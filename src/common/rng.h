#pragma once
// Deterministic random number generation.
//
// Every stochastic component in the library (channels, adversaries,
// reservoir buffer selection, Monte-Carlo experiments) draws from an
// explicitly seeded `Rng` so that every experiment is reproducible
// bit-for-bit. The generator is Xoshiro256** seeded via SplitMix64,
// which is both fast and statistically strong for simulation use.
// This is NOT a cryptographic RNG; key material in tests/examples is
// derived from it only for reproducibility of scenarios, never as a
// security claim.

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace dap::common {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit word.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double next_double() noexcept;

  /// Uniform integer in [lo, hi] inclusive; throws if lo > hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// True with probability `p` (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with the given rate (> 0).
  double exponential(double rate);

  /// `n` pseudo-random bytes (test/scenario material, not cryptographic).
  Bytes bytes(std::size_t n);

  /// Derives an independent child generator; children with distinct tags
  /// produce independent streams (used to give each node its own RNG).
  [[nodiscard]] Rng fork(std::uint64_t tag) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace dap::common
