#include "common/table.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/csv.h"

namespace dap::common {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("TextTable: empty header");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable::add_row: arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(format_number(v));
  add_row(std::move(text));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace dap::common
