#include "common/bytes.h"

#include <algorithm>
#include <stdexcept>

namespace dap::common {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes bytes_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

bool equal(ByteView a, ByteView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

bool constant_time_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

Bytes take_prefix(ByteView data, std::size_t n) {
  if (n > data.size()) {
    throw std::invalid_argument("take_prefix: prefix longer than data");
  }
  return Bytes(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(n));
}

}  // namespace dap::common
