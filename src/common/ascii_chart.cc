#include "common/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace dap::common {

namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@'};

std::string axis_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%8.3g", v);
  return buf;
}

}  // namespace

std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& options) {
  if (series.empty()) {
    throw std::invalid_argument("render_chart: no series");
  }
  if (series.size() > sizeof kGlyphs) {
    throw std::invalid_argument("render_chart: too many series (max 6)");
  }
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = xmin;
  double ymax = -xmin;
  for (const auto& s : series) {
    if (s.xs.size() != s.ys.size()) {
      throw std::invalid_argument("render_chart: xs/ys length mismatch in '" +
                                  s.name + "'");
    }
    if (s.xs.empty()) {
      throw std::invalid_argument("render_chart: empty series '" + s.name +
                                  "'");
    }
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (!std::isfinite(s.xs[i]) || !std::isfinite(s.ys[i])) continue;
      xmin = std::min(xmin, s.xs[i]);
      xmax = std::max(xmax, s.xs[i]);
      ymin = std::min(ymin, s.ys[i]);
      ymax = std::max(ymax, s.ys[i]);
    }
  }
  if (!std::isfinite(xmin) || !std::isfinite(ymin)) {
    throw std::invalid_argument("render_chart: no finite data points");
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  const std::size_t w = std::max<std::size_t>(options.width, 16);
  const std::size_t h = std::max<std::size_t>(options.height, 6);
  std::vector<std::string> grid(h, std::string(w, ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (!std::isfinite(s.xs[i]) || !std::isfinite(s.ys[i])) continue;
      const double fx = (s.xs[i] - xmin) / (xmax - xmin);
      const double fy = (s.ys[i] - ymin) / (ymax - ymin);
      auto cx = static_cast<std::size_t>(
          std::lround(fx * static_cast<double>(w - 1)));
      auto cy = static_cast<std::size_t>(
          std::lround(fy * static_cast<double>(h - 1)));
      grid[h - 1 - cy][cx] = kGlyphs[si];
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << "  " << options.title << '\n';
  for (std::size_t r = 0; r < h; ++r) {
    // y-axis tick at top, middle, bottom rows.
    if (r == 0) {
      out << axis_number(ymax) << " |";
    } else if (r == h - 1) {
      out << axis_number(ymin) << " |";
    } else if (r == h / 2) {
      out << axis_number((ymin + ymax) / 2) << " |";
    } else {
      out << std::string(8, ' ') << " |";
    }
    out << grid[r] << '\n';
  }
  out << std::string(9, ' ') << '+' << std::string(w, '-') << '\n';
  out << std::string(10, ' ') << axis_number(xmin)
      << std::string(w > 24 ? w - 24 : 1, ' ') << axis_number(xmax);
  if (!options.x_label.empty()) out << "   (x: " << options.x_label << ")";
  out << '\n';
  out << std::string(10, ' ') << "legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "  " << kGlyphs[si] << " = " << series[si].name;
  }
  out << '\n';
  if (!options.y_label.empty()) {
    out << std::string(10, ' ') << "(y: " << options.y_label << ")\n";
  }
  return out.str();
}

}  // namespace dap::common
