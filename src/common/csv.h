#pragma once
// Minimal CSV writer: every bench binary writes its series both to stdout
// (human-readable table) and to a CSV file so figures can be re-plotted.

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace dap::common {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  /// Writes one row; throws std::invalid_argument on arity mismatch.
  void row(const std::vector<double>& values);
  /// Mixed-type row (already formatted cells).
  void row_text(const std::vector<std::string>& cells);

  /// Pushes buffered rows to disk. The run registry copies the CSV
  /// while the writer may still be alive, so rows must be visible to
  /// other readers of the file before destruction.
  void flush();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

/// Formats a double with enough precision for round-tripping plots
/// but without noise ("0.4400", "123.4567" style, trailing zeros trimmed).
std::string format_number(double v);

}  // namespace dap::common
