#pragma once
// Byte-buffer primitives shared by every module.
//
// All protocol material (keys, MACs, packets) is carried as `Bytes`
// (std::vector<std::uint8_t>) and viewed through `ByteView`
// (std::span<const std::uint8_t>). Helpers here cover hex encoding,
// comparison, and concatenation; nothing in this header allocates
// implicitly except the functions that return `Bytes` by value.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dap::common {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Renders `data` as lowercase hex ("deadbeef").
std::string to_hex(ByteView data);

/// Parses lowercase/uppercase hex; throws std::invalid_argument on bad input
/// (odd length or non-hex character).
Bytes from_hex(std::string_view hex);

/// Copies a string's bytes (no terminator) into a fresh buffer.
Bytes bytes_of(std::string_view text);

/// Concatenates any number of byte views into one buffer.
Bytes concat(std::initializer_list<ByteView> parts);

/// Equality that does not depend on container identity.
bool equal(ByteView a, ByteView b);

/// Constant-time equality: runtime depends only on the lengths, never on
/// content. Returns false immediately (and only) on length mismatch.
/// Use for all MAC/tag comparisons so forgery attempts cannot use timing.
bool constant_time_equal(ByteView a, ByteView b);

/// First `n` bytes of `data` as a fresh buffer; throws if n > data.size().
Bytes take_prefix(ByteView data, std::size_t n);

}  // namespace dap::common
