#pragma once
// Deterministic parallel execution for the experiment layer.
//
// `parallel_for` / `parallel_map` fan an index range out over a
// work-stealing thread pool while keeping results bitwise identical to a
// serial run: callers pre-derive any per-item RNG state serially (the
// `subseed` helper and `Rng::fork` both mix with SplitMix64), item
// results land in index-addressed slots, and every chunk of work runs
// against a thread-local telemetry shard that is merged back into the
// process-global registry *in chunk order* on the calling thread once
// the pool joins.
//
// The telemetry shards are wired through `ShardHooks` function pointers
// rather than a direct dependency: dap_obs links dap_common, so this
// layer cannot include obs headers. obs/registry.cc installs the hooks
// from a static initializer; with no hooks installed the pool still runs
// but bodies share whatever global state they touch. The installed hooks
// live behind an annotated mutex and are snapshotted into each job when
// parallel_for starts, so a job always runs against one consistent hook
// set even if installation raced with it.
//
// Locking discipline: the pool and job internals use the annotated
// primitives from common/sync.h; a clang build with DAP_THREAD_SAFETY=ON
// (-Werror=thread-safety) proves every guarded field is only touched
// under its mutex — the static counterpart of the TSan job.
//
// Determinism guarantee (and its edge): experiment outputs (structs,
// CSV rows) and merged counters / histogram bucket counts are bitwise
// identical for any thread count. Merged histogram *moments* (mean,
// stddev) may differ in the last ulp across different thread counts
// because Welford combination is not exactly associative; they are
// stable for a fixed thread count and chunking.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace dap::common {

/// Threads the hardware advertises (>= 1 even when unknown).
[[nodiscard]] std::size_t hardware_threads() noexcept;

/// Effective default parallelism: the process-wide override installed by
/// `set_default_threads` if any, else the `DAP_THREADS` environment
/// variable, else `hardware_threads()`.
[[nodiscard]] std::size_t default_threads() noexcept;

/// Installs (n >= 1) or clears (n == 0) the process-wide thread-count
/// override consulted by `default_threads()`. Benches wire their
/// `--threads` flag through this.
void set_default_threads(std::size_t n) noexcept;

/// Stateless SplitMix64-derived sub-seed for item `index` of a run
/// seeded with `base_seed`. Distinct (base, index) pairs give
/// independent streams; the mapping is fixed for all time so seeded
/// experiments stay reproducible across releases.
[[nodiscard]] std::uint64_t subseed(std::uint64_t base_seed,
                                    std::uint64_t index) noexcept;

/// True while the calling thread is executing inside a parallel_for
/// body; nested parallel_for calls detect this and run inline serially.
[[nodiscard]] bool in_parallel_region() noexcept;

/// Bridge to the telemetry layer (installed by obs/registry.cc).
/// `create` runs on the executing thread at chunk start; `activate` /
/// `deactivate` bracket the chunk body (bind/unbind the thread-local
/// shard); `merge` runs on the *calling* thread after the join, once per
/// chunk in ascending chunk order; `destroy` frees the shard.
struct ShardHooks {
  void* (*create)() = nullptr;
  void (*activate)(void* shard) = nullptr;
  void (*deactivate)(void* shard) = nullptr;
  void (*merge)(void* shard) = nullptr;
  void (*destroy)(void* shard) = nullptr;
};

void set_shard_hooks(const ShardHooks& hooks) noexcept;
/// Snapshot of the currently installed hooks (by value: the returned
/// copy stays valid even if another thread re-installs concurrently).
[[nodiscard]] ShardHooks shard_hooks() noexcept;

struct ParallelOptions {
  /// Worker count including the calling thread; 0 = default_threads().
  std::size_t threads = 0;
  /// Indices per chunk; 0 picks a grain that yields several chunks per
  /// thread for stealing-based load balance.
  std::size_t grain = 0;
};

/// Invokes `body(i)` for every i in [0, n). With threads <= 1 (or n <=
/// 1, or when already inside a parallel region) the body runs inline on
/// the caller with no shards — the bit-exact serial reference. The first
/// exception thrown by any chunk is rethrown on the caller after the
/// join; remaining chunks are skipped (their shards still merge).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  const ParallelOptions& options = {});

/// Maps [0, n) through `fn` into an index-ordered vector (slot i is
/// fn(i) regardless of which thread ran it).
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_map(std::size_t n, Fn&& fn,
                                          const ParallelOptions& options = {}) {
  std::vector<T> out(n);
  parallel_for(
      n, [&out, &fn](std::size_t i) { out[i] = fn(i); }, options);
  return out;
}

}  // namespace dap::common
