#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dap::common {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RateEstimator::add(bool success) noexcept {
  ++trials_;
  if (success) ++successes_;
}

double RateEstimator::rate() const noexcept {
  if (trials_ == 0) return 0.0;
  return static_cast<double>(successes_) / static_cast<double>(trials_);
}

std::pair<double, double> RateEstimator::wilson95() const noexcept {
  if (trials_ == 0) return {0.0, 1.0};
  const double z = 1.96;
  const double n = static_cast<double>(trials_);
  const double p = rate();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, (centre - margin) / denom),
          std::min(1.0, (centre + margin) / denom)};
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: need >= 1 bin");
}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const { return counts_.at(i); }

double Histogram::bin_lo(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_hi");
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                   static_cast<double>(counts_.size());
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n == 0) return {};
  if (n == 1) return {lo};
  std::vector<double> out;
  out.reserve(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(lo + step * static_cast<double>(i));
  }
  out.back() = hi;  // avoid accumulated rounding on the last point
  return out;
}

}  // namespace dap::common
