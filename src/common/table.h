#pragma once
// Fixed-width text table printer for bench/experiment stdout output.

#include <string>
#include <vector>

namespace dap::common {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with format_number().
  void add_row_numeric(const std::vector<double>& cells);

  /// Renders with column alignment and a header separator.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dap::common
