#include "common/codec.h"

#include <limits>
#include <stdexcept>

namespace dap::common {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::raw(ByteView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Writer::blob(ByteView data) {
  if (data.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw std::invalid_argument("Writer::blob: payload exceeds 64 KiB");
  }
  u16(static_cast<std::uint16_t>(data.size()));
  raw(data);
}

std::optional<std::uint8_t> Reader::u8() {
  if (remaining() < 1) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> Reader::u16() {
  if (remaining() < 2) return std::nullopt;
  std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> Reader::u32() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> Reader::u64() {
  if (remaining() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::optional<Bytes> Reader::raw(std::size_t n) {
  if (remaining() < n) return std::nullopt;
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::optional<Bytes> Reader::blob() {
  const auto len = u16();
  if (!len) return std::nullopt;
  return raw(*len);
}

}  // namespace dap::common
