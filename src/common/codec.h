#pragma once
// Little-endian wire codec used by src/wire for packet serialization.
//
// Writer appends fixed-width integers and length-prefixed blobs to a growing
// buffer; Reader consumes them in order and reports truncation via
// std::optional rather than exceptions, because truncated packets are an
// expected runtime condition on a lossy channel.

#include <cstdint>
#include <optional>

#include "common/bytes.h"

namespace dap::common {

class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw bytes, no length prefix (fixed-size fields like MACs).
  void raw(ByteView data);
  /// u16 length prefix followed by the bytes; throws if data > 64 KiB.
  void blob(ByteView data);

  [[nodiscard]] const Bytes& data() const noexcept { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(ByteView data) noexcept : data_(data) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  /// Exactly n raw bytes.
  std::optional<Bytes> raw(std::size_t n);
  /// u16 length-prefixed blob.
  std::optional<Bytes> blob();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace dap::common
