#include "common/rng.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace dap::common {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 uniform mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  const std::uint64_t range = hi - lo + 1;  // range==0 means full 2^64 span
  if (range == 0) return next_u64();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = range * ((~std::uint64_t{0}) / range);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + (v % range);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  double u = next_double();
  // next_double() may return exactly 0; nudge to keep log finite.
  if (u == 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    std::uint64_t word = next_u64();
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(word >> (8 * i)));
    }
  }
  return out;
}

Rng Rng::fork(std::uint64_t tag) noexcept {
  // Mix the tag into a fresh seed derived from this generator's stream.
  std::uint64_t sm = next_u64() ^ (tag * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(sm));
}

}  // namespace dap::common
