#pragma once
// Streaming statistics used by the Monte-Carlo experiments and benches.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dap::common {

/// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean (1.96 * stderr); 0 for fewer than two samples.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Bernoulli success-rate estimator with a Wilson score interval, better
/// behaved than the normal approximation at rates near 0 or 1.
class RateEstimator {
 public:
  void add(bool success) noexcept;

  [[nodiscard]] std::size_t trials() const noexcept { return trials_; }
  [[nodiscard]] std::size_t successes() const noexcept { return successes_; }
  [[nodiscard]] double rate() const noexcept;
  /// Wilson 95% interval as {lo, hi}; {0,1} with no trials.
  [[nodiscard]] std::pair<double, double> wilson95() const noexcept;

  /// Merges another estimator into this one (parallel reduction). Exact:
  /// trial/success totals are integers, so merge order never matters.
  void merge(const RateEstimator& other) noexcept {
    trials_ += other.trials_;
    successes_ += other.successes_;
  }

 private:
  std::size_t trials_ = 0;
  std::size_t successes_ = 0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Linearly spaced sweep points: n values from lo to hi inclusive.
std::vector<double> linspace(double lo, double hi, std::size_t n);

}  // namespace dap::common
