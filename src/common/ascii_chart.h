#pragma once
// Terminal line charts so bench binaries can show the *shape* of each
// reproduced figure directly in their stdout, next to the numeric rows.

#include <string>
#include <vector>

namespace dap::common {

struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;  // must match xs in length
};

struct ChartOptions {
  std::size_t width = 72;   // plot area columns
  std::size_t height = 20;  // plot area rows
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Renders up to 6 series into a multi-line string using per-series glyphs
/// ('*', 'o', '+', 'x', '#', '@'). Axes are scaled to the combined data
/// range. Throws std::invalid_argument on empty/odd-shaped input.
std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& options);

}  // namespace dap::common
