#pragma once
// Link-layer framing: packet bytes + CRC-32 trailer.
//
// The simulator corrupts frames at the byte level when a channel is
// configured with a bit-error model; `deframe` drops corrupted frames the
// way real link hardware would, so the protocol layer sees only intact
// packets or losses.

#include <optional>

#include "common/bytes.h"
#include "wire/packet.h"

namespace dap::wire {

/// encode(packet) + 32-bit CRC trailer.
common::Bytes frame(const Packet& packet);

/// Verifies CRC and decodes; nullopt on CRC mismatch or malformed payload.
std::optional<Packet> deframe(common::ByteView bytes);

/// Serializes a WOTS signature for transport in BootstrapPacket.
common::Bytes encode_wots_signature(
    const std::vector<common::Bytes>& chains);
std::optional<std::vector<common::Bytes>> decode_wots_signature(
    common::ByteView data);

}  // namespace dap::wire
