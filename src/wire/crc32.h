#pragma once
// CRC-32 (IEEE 802.3 polynomial, reflected) for link-layer framing.
//
// The simulator's channel can corrupt frames; CRC catches corruption the
// way a real link layer would, so protocol code above only ever sees
// whole, uncorrupted packets (or nothing). CRC is NOT a security
// mechanism — authenticity comes from the MACs.

#include <cstdint>

#include "common/bytes.h"

namespace dap::wire {

std::uint32_t crc32(common::ByteView data) noexcept;

}  // namespace dap::wire
