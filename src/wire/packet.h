#pragma once
// Packet model for the whole protocol family.
//
// Every broadcast in TESLA / μTESLA / multi-level μTESLA / TESLA++ / DAP
// is one of a small set of packet kinds; they are modelled as a
// std::variant so protocol code pattern-matches instead of down-casting.
// Each kind knows its on-wire bit size (used by the bandwidth model and
// by the memory-cost experiment E6).

#include <cstdint>
#include <optional>
#include <variant>

#include "common/bytes.h"

namespace dap::wire {

using NodeId = std::uint32_t;
using IntervalIndex = std::uint32_t;

/// TESLA-style data packet: message + MAC + (optionally) a disclosed key
/// for an earlier interval, all in one broadcast.
struct TeslaPacket {
  NodeId sender = 0;
  IntervalIndex interval = 0;        // interval whose key MACed this packet
  common::Bytes message;
  common::Bytes mac;                 // MAC_{K'_interval}(message)
  IntervalIndex disclosed_interval = 0;
  common::Bytes disclosed_key;       // may be empty (no disclosure piggybacked)

  [[nodiscard]] std::size_t wire_bits() const noexcept;
  bool operator==(const TeslaPacket&) const = default;
};

/// DAP step 3 (Fig. 4): only the MAC and the interval index travel ahead
/// of the message. Also used by TESLA++ as its "MAC-first" announcement.
struct MacAnnounce {
  NodeId sender = 0;
  IntervalIndex interval = 0;
  common::Bytes mac;  // MAC_{K_interval}(M_interval), 80 bits in the paper

  [[nodiscard]] std::size_t wire_bits() const noexcept;
  bool operator==(const MacAnnounce&) const = default;
};

/// DAP step 4: the message, the now-disclosed key and the index together.
struct MessageReveal {
  NodeId sender = 0;
  IntervalIndex interval = 0;
  common::Bytes message;
  common::Bytes key;  // K_interval, disclosed

  [[nodiscard]] std::size_t wire_bits() const noexcept;
  bool operator==(const MessageReveal&) const = default;
};

/// Standalone key disclosure (μTESLA discloses once per interval).
struct KeyDisclosure {
  NodeId sender = 0;
  IntervalIndex interval = 0;  // interval the key belongs to
  common::Bytes key;

  [[nodiscard]] std::size_t wire_bits() const noexcept;
  bool operator==(const KeyDisclosure&) const = default;
};

/// Multi-level μTESLA commitment-distribution message for high-level
/// interval i:
///   CDM_i = i | K_{i+2,0} | H(CDM_{i+1})? | MAC_{K'_i}(...) | K_{i-1}
/// The `next_cdm_image` field is EDRP's addition (empty otherwise).
struct CdmPacket {
  NodeId sender = 0;
  IntervalIndex high_interval = 0;
  common::Bytes low_commitment;      // commitment of a future low-level chain
  common::Bytes next_cdm_image;      // EDRP: H(CDM_{i+1}); empty in original
  common::Bytes mac;                 // MAC under high-level key K_i
  common::Bytes disclosed_high_key;  // K_{i-1}

  /// The bytes covered by `mac` (everything except mac and disclosed key).
  [[nodiscard]] common::Bytes mac_payload() const;
  [[nodiscard]] std::size_t wire_bits() const noexcept;
  bool operator==(const CdmPacket&) const = default;
};

/// Bootstrap: the chain commitment, interval schedule, and a WOTS
/// signature transported as raw bytes (signature layout is handled by
/// crypto::WotsSignature; here it is opaque payload).
struct BootstrapPacket {
  NodeId sender = 0;
  IntervalIndex start_interval = 0;
  std::uint64_t interval_duration_us = 0;
  common::Bytes commitment;
  common::Bytes signature;  // serialized WOTS signature
  common::Bytes signer_public_key;

  [[nodiscard]] std::size_t wire_bits() const noexcept;
  bool operator==(const BootstrapPacket&) const = default;
};

using Packet = std::variant<TeslaPacket, MacAnnounce, MessageReveal,
                            KeyDisclosure, CdmPacket, BootstrapPacket>;

/// On-wire size of any packet in bits (header + payload, excluding CRC).
std::size_t wire_bits(const Packet& packet) noexcept;

/// Serializes with a leading type tag. Never fails for well-formed packets.
common::Bytes encode(const Packet& packet);

/// Parses; nullopt for truncated/garbled/unknown-tag input.
std::optional<Packet> decode(common::ByteView data);

/// The sender id of any packet kind.
NodeId sender_of(const Packet& packet) noexcept;

}  // namespace dap::wire
