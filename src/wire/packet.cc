#include "wire/packet.h"

#include "common/codec.h"
#include "common/contracts.h"

namespace dap::wire {

namespace {

// Fixed header: type tag (8) + sender (32).
constexpr std::size_t kHeaderBits = 8 + 32;

enum class Tag : std::uint8_t {
  kTesla = 1,
  kMacAnnounce = 2,
  kMessageReveal = 3,
  kKeyDisclosure = 4,
  kCdm = 5,
  kBootstrap = 6,
};

std::size_t blob_bits(const common::Bytes& b) noexcept {
  return 16 + b.size() * 8;  // u16 length prefix + payload
}

}  // namespace

std::size_t TeslaPacket::wire_bits() const noexcept {
  return kHeaderBits + 32 + blob_bits(message) + blob_bits(mac) + 32 +
         blob_bits(disclosed_key);
}

std::size_t MacAnnounce::wire_bits() const noexcept {
  return kHeaderBits + 32 + blob_bits(mac);
}

std::size_t MessageReveal::wire_bits() const noexcept {
  return kHeaderBits + 32 + blob_bits(message) + blob_bits(key);
}

std::size_t KeyDisclosure::wire_bits() const noexcept {
  return kHeaderBits + 32 + blob_bits(key);
}

common::Bytes CdmPacket::mac_payload() const {
  common::Writer w;
  w.u32(high_interval);
  w.blob(low_commitment);
  w.blob(next_cdm_image);
  return std::move(w).take();
}

std::size_t CdmPacket::wire_bits() const noexcept {
  return kHeaderBits + 32 + blob_bits(low_commitment) +
         blob_bits(next_cdm_image) + blob_bits(mac) +
         blob_bits(disclosed_high_key);
}

std::size_t BootstrapPacket::wire_bits() const noexcept {
  return kHeaderBits + 32 + 64 + blob_bits(commitment) + blob_bits(signature) +
         blob_bits(signer_public_key);
}

std::size_t wire_bits(const Packet& packet) noexcept {
  return std::visit([](const auto& p) { return p.wire_bits(); }, packet);
}

NodeId sender_of(const Packet& packet) noexcept {
  return std::visit([](const auto& p) { return p.sender; }, packet);
}

common::Bytes encode(const Packet& packet) {
  common::Writer w;
  std::visit(
      [&w](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, TeslaPacket>) {
          w.u8(static_cast<std::uint8_t>(Tag::kTesla));
          w.u32(p.sender);
          w.u32(p.interval);
          w.blob(p.message);
          w.blob(p.mac);
          w.u32(p.disclosed_interval);
          w.blob(p.disclosed_key);
        } else if constexpr (std::is_same_v<T, MacAnnounce>) {
          w.u8(static_cast<std::uint8_t>(Tag::kMacAnnounce));
          w.u32(p.sender);
          w.u32(p.interval);
          w.blob(p.mac);
        } else if constexpr (std::is_same_v<T, MessageReveal>) {
          w.u8(static_cast<std::uint8_t>(Tag::kMessageReveal));
          w.u32(p.sender);
          w.u32(p.interval);
          w.blob(p.message);
          w.blob(p.key);
        } else if constexpr (std::is_same_v<T, KeyDisclosure>) {
          w.u8(static_cast<std::uint8_t>(Tag::kKeyDisclosure));
          w.u32(p.sender);
          w.u32(p.interval);
          w.blob(p.key);
        } else if constexpr (std::is_same_v<T, CdmPacket>) {
          w.u8(static_cast<std::uint8_t>(Tag::kCdm));
          w.u32(p.sender);
          w.u32(p.high_interval);
          w.blob(p.low_commitment);
          w.blob(p.next_cdm_image);
          w.blob(p.mac);
          w.blob(p.disclosed_high_key);
        } else if constexpr (std::is_same_v<T, BootstrapPacket>) {
          w.u8(static_cast<std::uint8_t>(Tag::kBootstrap));
          w.u32(p.sender);
          w.u32(p.start_interval);
          w.u64(p.interval_duration_us);
          w.blob(p.commitment);
          w.blob(p.signature);
          w.blob(p.signer_public_key);
        }
      },
      packet);
  common::Bytes out = std::move(w).take();
  DAP_ENSURE(out.size() * 8 == wire_bits(packet),
             "encode: serialized size disagrees with wire_bits accounting");
  return out;
}

std::optional<Packet> decode(common::ByteView data) {
  // The bytes themselves are adversarial and must only ever be
  // *rejected* (nullopt), never asserted on; the view's shape is the
  // caller's contract.
  DAP_REQUIRE(data.data() != nullptr || data.empty(),
              "decode: null view with nonzero length");
  common::Reader r(data);
  const auto tag = r.u8();
  if (!tag) return std::nullopt;
  const auto sender = r.u32();
  if (!sender) return std::nullopt;

  switch (static_cast<Tag>(*tag)) {
    case Tag::kTesla: {
      TeslaPacket p;
      p.sender = *sender;
      const auto interval = r.u32();
      auto message = r.blob();
      auto mac = r.blob();
      const auto disclosed_interval = r.u32();
      auto key = r.blob();
      if (!interval || !message || !mac || !disclosed_interval || !key ||
          !r.exhausted()) {
        return std::nullopt;
      }
      p.interval = *interval;
      p.message = std::move(*message);
      p.mac = std::move(*mac);
      p.disclosed_interval = *disclosed_interval;
      p.disclosed_key = std::move(*key);
      return Packet{std::move(p)};
    }
    case Tag::kMacAnnounce: {
      MacAnnounce p;
      p.sender = *sender;
      const auto interval = r.u32();
      auto mac = r.blob();
      if (!interval || !mac || !r.exhausted()) return std::nullopt;
      p.interval = *interval;
      p.mac = std::move(*mac);
      return Packet{std::move(p)};
    }
    case Tag::kMessageReveal: {
      MessageReveal p;
      p.sender = *sender;
      const auto interval = r.u32();
      auto message = r.blob();
      auto key = r.blob();
      if (!interval || !message || !key || !r.exhausted()) return std::nullopt;
      p.interval = *interval;
      p.message = std::move(*message);
      p.key = std::move(*key);
      return Packet{std::move(p)};
    }
    case Tag::kKeyDisclosure: {
      KeyDisclosure p;
      p.sender = *sender;
      const auto interval = r.u32();
      auto key = r.blob();
      if (!interval || !key || !r.exhausted()) return std::nullopt;
      p.interval = *interval;
      p.key = std::move(*key);
      return Packet{std::move(p)};
    }
    case Tag::kCdm: {
      CdmPacket p;
      p.sender = *sender;
      const auto high = r.u32();
      auto low_commitment = r.blob();
      auto image = r.blob();
      auto mac = r.blob();
      auto disclosed = r.blob();
      if (!high || !low_commitment || !image || !mac || !disclosed ||
          !r.exhausted()) {
        return std::nullopt;
      }
      p.high_interval = *high;
      p.low_commitment = std::move(*low_commitment);
      p.next_cdm_image = std::move(*image);
      p.mac = std::move(*mac);
      p.disclosed_high_key = std::move(*disclosed);
      return Packet{std::move(p)};
    }
    case Tag::kBootstrap: {
      BootstrapPacket p;
      p.sender = *sender;
      const auto start = r.u32();
      const auto duration = r.u64();
      auto commitment = r.blob();
      auto signature = r.blob();
      auto pk = r.blob();
      if (!start || !duration || !commitment || !signature || !pk ||
          !r.exhausted()) {
        return std::nullopt;
      }
      p.start_interval = *start;
      p.interval_duration_us = *duration;
      p.commitment = std::move(*commitment);
      p.signature = std::move(*signature);
      p.signer_public_key = std::move(*pk);
      return Packet{std::move(p)};
    }
  }
  return std::nullopt;
}

}  // namespace dap::wire
