#include "wire/frame.h"

#include "common/codec.h"
#include "common/contracts.h"
#include "wire/crc32.h"

namespace dap::wire {

common::Bytes frame(const Packet& packet) {
  common::Bytes payload = encode(packet);
  const std::uint32_t crc = crc32(payload);
  common::Writer w;
  w.raw(payload);
  w.u32(crc);
  common::Bytes out = std::move(w).take();
  DAP_ENSURE(out.size() == payload.size() + 4,
             "frame: trailer must be exactly the 32-bit CRC");
  return out;
}

std::optional<Packet> deframe(common::ByteView bytes) {
  if (bytes.size() < 4) return std::nullopt;
  const common::ByteView payload = bytes.first(bytes.size() - 4);
  common::Reader trailer(bytes.subspan(bytes.size() - 4));
  const auto crc = trailer.u32();
  if (!crc || *crc != crc32(payload)) return std::nullopt;
  return decode(payload);
}

common::Bytes encode_wots_signature(
    const std::vector<common::Bytes>& chains) {
  common::Writer w;
  w.u16(static_cast<std::uint16_t>(chains.size()));
  for (const auto& c : chains) w.blob(c);
  return std::move(w).take();
}

std::optional<std::vector<common::Bytes>> decode_wots_signature(
    common::ByteView data) {
  DAP_REQUIRE(data.data() != nullptr || data.empty(),
              "decode_wots_signature: null view with nonzero length");
  common::Reader r(data);
  const auto count = r.u16();
  if (!count) return std::nullopt;
  std::vector<common::Bytes> chains;
  chains.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    auto c = r.blob();
    if (!c) return std::nullopt;
    chains.push_back(std::move(*c));
  }
  if (!r.exhausted()) return std::nullopt;
  return chains;
}

}  // namespace dap::wire
